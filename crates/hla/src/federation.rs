use std::collections::{BTreeMap, BTreeSet, VecDeque};

use bytes::Bytes;

use crate::time_mgmt::TimeManager;
use crate::{
    AttributeHandle, AttributeValues, Callback, FedTime, FederateHandle, InteractionClassHandle,
    ObjectClassHandle, ObjectHandle, ObjectModel, ParameterValues, RegionHandle, RoutingRegion,
    RtiError,
};

/// One federate's subscription to an object class: the attribute set plus an
/// optional DDM routing region narrowing its interest.
#[derive(Debug, Clone)]
struct Subscription {
    attributes: BTreeSet<AttributeHandle>,
    region: Option<RegionHandle>,
}

#[derive(Debug, Default)]
struct FederateState {
    name: String,
    /// Receive-order queue, drained by `tick`.
    ro_queue: VecDeque<Callback>,
    /// Timestamp-order store, released into the RO queue on time grants.
    tso_queue: BTreeMap<(FedTime, u64), Callback>,
    published_classes: BTreeSet<ObjectClassHandle>,
    subscriptions: BTreeMap<ObjectClassHandle, Subscription>,
    published_interactions: BTreeSet<InteractionClassHandle>,
    subscribed_interactions: BTreeSet<InteractionClassHandle>,
}

#[derive(Debug)]
struct ObjectState {
    class: ObjectClassHandle,
    name: String,
    owner: FederateHandle,
}

/// One federation execution: the paper's "campus" simulation would be a
/// single instance with MN, ADF and broker federates joined.
#[derive(Debug)]
pub(crate) struct Federation {
    fom: ObjectModel,
    federates: BTreeMap<FederateHandle, FederateState>,
    objects: BTreeMap<ObjectHandle, ObjectState>,
    time: TimeManager,
    sync_points: BTreeMap<String, BTreeSet<FederateHandle>>,
    regions: BTreeMap<RegionHandle, (FederateHandle, RoutingRegion)>,
    routing_dims: Option<usize>,
    next_federate: u32,
    next_object: u32,
    next_region: u32,
    tso_seq: u64,
}

impl Federation {
    pub fn new(fom: ObjectModel) -> Self {
        Federation {
            fom,
            federates: BTreeMap::new(),
            objects: BTreeMap::new(),
            time: TimeManager::new(),
            sync_points: BTreeMap::new(),
            regions: BTreeMap::new(),
            routing_dims: None,
            next_federate: 0,
            next_object: 0,
            next_region: 0,
            tso_seq: 0,
        }
    }

    pub fn fom(&self) -> &ObjectModel {
        &self.fom
    }

    pub fn federate_count(&self) -> usize {
        self.federates.len()
    }

    // --- Federation management -------------------------------------------

    pub fn join(&mut self, name: &str) -> FederateHandle {
        let handle = FederateHandle::from_raw(self.next_federate);
        self.next_federate += 1;
        self.federates.insert(
            handle,
            FederateState {
                name: name.to_string(),
                ..FederateState::default()
            },
        );
        self.time.join(handle);
        handle
    }

    pub fn resign(&mut self, fed: FederateHandle) -> Result<(), RtiError> {
        if self.federates.remove(&fed).is_none() {
            return Err(RtiError::NotJoined);
        }
        self.time.resign(fed);
        // Delete the resigning federate's objects, notifying subscribers.
        let owned: Vec<ObjectHandle> = self
            .objects
            .iter()
            .filter(|(_, st)| st.owner == fed)
            .map(|(h, _)| *h)
            .collect();
        for object in owned {
            let class = self.objects[&object].class;
            self.objects.remove(&object);
            self.broadcast_to_subscribers(class, fed, |_| Callback::RemoveObject { object });
        }
        // A departed regulator may unblock pending advances.
        self.dispatch_grants();
        // Sync points no longer wait on the resigned federate.
        self.settle_sync_points();
        Ok(())
    }

    fn state(&self, fed: FederateHandle) -> Result<&FederateState, RtiError> {
        self.federates.get(&fed).ok_or(RtiError::NotJoined)
    }

    fn state_mut(&mut self, fed: FederateHandle) -> Result<&mut FederateState, RtiError> {
        self.federates.get_mut(&fed).ok_or(RtiError::NotJoined)
    }

    /// Names of the currently joined federates, in handle order.
    pub fn federate_names(&self) -> Vec<String> {
        self.federates.values().map(|s| s.name.clone()).collect()
    }

    // --- Declaration management ------------------------------------------

    pub fn publish_object_class(
        &mut self,
        fed: FederateHandle,
        class: ObjectClassHandle,
    ) -> Result<(), RtiError> {
        if !self.fom.has_object_class(class) {
            return Err(RtiError::UnknownHandle);
        }
        self.state_mut(fed)?.published_classes.insert(class);
        Ok(())
    }

    pub fn subscribe_object_class(
        &mut self,
        fed: FederateHandle,
        class: ObjectClassHandle,
        attributes: &[AttributeHandle],
    ) -> Result<(), RtiError> {
        self.subscribe_object_class_scoped(fed, class, attributes, None)
    }

    pub fn subscribe_object_class_scoped(
        &mut self,
        fed: FederateHandle,
        class: ObjectClassHandle,
        attributes: &[AttributeHandle],
        region: Option<RegionHandle>,
    ) -> Result<(), RtiError> {
        if let Some(r) = region {
            self.check_region(fed, r)?;
        }
        if !self.fom.has_object_class(class) {
            return Err(RtiError::UnknownHandle);
        }
        for a in attributes {
            if !self.fom.class_has_attribute(class, *a) {
                return Err(RtiError::UnknownHandle);
            }
        }
        // Discover existing instances of the class for the late subscriber.
        let discoveries: Vec<Callback> = self
            .objects
            .iter()
            .filter(|(_, st)| st.class == class && st.owner != fed)
            .map(|(h, st)| Callback::DiscoverObject {
                object: *h,
                class,
                name: st.name.clone(),
            })
            .collect();
        let state = self.state_mut(fed)?;
        state.subscriptions.insert(
            class,
            Subscription {
                attributes: attributes.iter().copied().collect(),
                region,
            },
        );
        state.ro_queue.extend(discoveries);
        Ok(())
    }

    pub fn publish_interaction(
        &mut self,
        fed: FederateHandle,
        class: InteractionClassHandle,
    ) -> Result<(), RtiError> {
        if !self.fom.has_interaction(class) {
            return Err(RtiError::UnknownHandle);
        }
        self.state_mut(fed)?.published_interactions.insert(class);
        Ok(())
    }

    pub fn subscribe_interaction(
        &mut self,
        fed: FederateHandle,
        class: InteractionClassHandle,
    ) -> Result<(), RtiError> {
        if !self.fom.has_interaction(class) {
            return Err(RtiError::UnknownHandle);
        }
        self.state_mut(fed)?.subscribed_interactions.insert(class);
        Ok(())
    }

    // --- Object management -------------------------------------------------

    pub fn register_object(
        &mut self,
        fed: FederateHandle,
        class: ObjectClassHandle,
    ) -> Result<ObjectHandle, RtiError> {
        if !self.state(fed)?.published_classes.contains(&class) {
            return Err(RtiError::NotPublished);
        }
        let handle = ObjectHandle::from_raw(self.next_object);
        self.next_object += 1;
        let class_name = self
            .fom
            .object_class_name(class)
            .unwrap_or("object")
            .to_string();
        let name = format!("{class_name}-{}", handle.raw());
        self.objects.insert(
            handle,
            ObjectState {
                class,
                name: name.clone(),
                owner: fed,
            },
        );
        self.broadcast_to_subscribers(class, fed, |_| Callback::DiscoverObject {
            object: handle,
            class,
            name: name.clone(),
        });
        Ok(handle)
    }

    pub fn delete_object(
        &mut self,
        fed: FederateHandle,
        object: ObjectHandle,
    ) -> Result<(), RtiError> {
        let st = self.objects.get(&object).ok_or(RtiError::UnknownObject)?;
        if st.owner != fed {
            return Err(RtiError::NotPublished);
        }
        let class = st.class;
        self.objects.remove(&object);
        self.broadcast_to_subscribers(class, fed, |_| Callback::RemoveObject { object });
        Ok(())
    }

    /// Delivers a callback to every federate subscribed to `class`
    /// (excluding `sender`).
    fn broadcast_to_subscribers<F>(
        &mut self,
        class: ObjectClassHandle,
        sender: FederateHandle,
        mut make: F,
    ) where
        F: FnMut(FederateHandle) -> Callback,
    {
        let targets: Vec<FederateHandle> = self
            .federates
            .iter()
            .filter(|(h, st)| **h != sender && st.subscriptions.contains_key(&class))
            .map(|(h, _)| *h)
            .collect();
        for t in targets {
            let cb = make(t);
            self.federates
                .get_mut(&t)
                .expect("target federate exists")
                .ro_queue
                .push_back(cb);
        }
    }

    pub fn update_attributes(
        &mut self,
        fed: FederateHandle,
        object: ObjectHandle,
        values: AttributeValues,
        time: Option<FedTime>,
    ) -> Result<(), RtiError> {
        self.update_attributes_scoped(fed, object, values, None, time)
    }

    pub fn update_attributes_scoped(
        &mut self,
        fed: FederateHandle,
        object: ObjectHandle,
        values: AttributeValues,
        update_region: Option<RegionHandle>,
        time: Option<FedTime>,
    ) -> Result<(), RtiError> {
        if let Some(r) = update_region {
            self.check_region(fed, r)?;
        }
        let st = self.objects.get(&object).ok_or(RtiError::UnknownObject)?;
        if st.owner != fed {
            return Err(RtiError::NotPublished);
        }
        let class = st.class;
        for (a, _) in &values {
            if !self.fom.class_has_attribute(class, *a) {
                return Err(RtiError::UnknownHandle);
            }
        }
        // Timestamp-order delivery requires a regulating sender whose
        // promise covers the timestamp.
        let tso_time = match time {
            Some(t) if self.time.is_regulating(fed) => {
                self.time.check_send_time(fed, t)?;
                Some(t)
            }
            _ => None,
        };

        let targets: Vec<(FederateHandle, AttributeValues)> = self
            .federates
            .iter()
            .filter(|(h, _)| **h != fed)
            .filter_map(|(h, fs)| {
                let subscription = fs.subscriptions.get(&class)?;
                // DDM: when both sides scoped their interest, deliver only
                // on overlap; an unscoped side means "everywhere".
                if let (Some(ur), Some(sr)) = (update_region, subscription.region) {
                    let update = &self.regions.get(&ur)?.1;
                    let interest = &self.regions.get(&sr)?.1;
                    if !update.overlaps(interest) {
                        return None;
                    }
                }
                let relevant: AttributeValues = values
                    .iter()
                    .filter(|(a, _)| subscription.attributes.contains(a))
                    .map(|(a, v)| (*a, Bytes::clone(v)))
                    .collect();
                if relevant.is_empty() {
                    None
                } else {
                    Some((*h, relevant))
                }
            })
            .collect();

        for (target, relevant) in targets {
            let constrained = self.time.is_constrained(target);
            let fs = self
                .federates
                .get_mut(&target)
                .expect("target federate exists");
            match tso_time {
                Some(t) if constrained => {
                    let seq = self.tso_seq;
                    self.tso_seq += 1;
                    fs.tso_queue.insert(
                        (t, seq),
                        Callback::ReflectAttributes {
                            object,
                            values: relevant,
                            time: Some(t),
                        },
                    );
                }
                _ => {
                    fs.ro_queue.push_back(Callback::ReflectAttributes {
                        object,
                        values: relevant,
                        time: tso_time,
                    });
                }
            }
        }
        Ok(())
    }

    pub fn send_interaction(
        &mut self,
        fed: FederateHandle,
        class: InteractionClassHandle,
        values: ParameterValues,
        time: Option<FedTime>,
    ) -> Result<(), RtiError> {
        if !self.state(fed)?.published_interactions.contains(&class) {
            return Err(RtiError::NotPublished);
        }
        let tso_time = match time {
            Some(t) if self.time.is_regulating(fed) => {
                self.time.check_send_time(fed, t)?;
                Some(t)
            }
            _ => None,
        };
        let targets: Vec<FederateHandle> = self
            .federates
            .iter()
            .filter(|(h, fs)| **h != fed && fs.subscribed_interactions.contains(&class))
            .map(|(h, _)| *h)
            .collect();
        for target in targets {
            let constrained = self.time.is_constrained(target);
            let fs = self
                .federates
                .get_mut(&target)
                .expect("target federate exists");
            let cb = Callback::ReceiveInteraction {
                class,
                values: values.iter().map(|(p, v)| (*p, Bytes::clone(v))).collect(),
                time: tso_time,
            };
            match tso_time {
                Some(t) if constrained => {
                    let seq = self.tso_seq;
                    self.tso_seq += 1;
                    fs.tso_queue.insert((t, seq), cb);
                }
                _ => fs.ro_queue.push_back(cb),
            }
        }
        Ok(())
    }

    // --- Data distribution management ----------------------------------------

    fn check_region(&self, fed: FederateHandle, region: RegionHandle) -> Result<(), RtiError> {
        match self.regions.get(&region) {
            None => Err(RtiError::InvalidRegion {
                reason: format!("unknown region {region}"),
            }),
            Some((owner, _)) if *owner != fed => Err(RtiError::InvalidRegion {
                reason: format!("region {region} is owned by another federate"),
            }),
            Some(_) => Ok(()),
        }
    }

    pub fn create_region(
        &mut self,
        fed: FederateHandle,
        region: RoutingRegion,
    ) -> Result<RegionHandle, RtiError> {
        self.state(fed)?;
        match self.routing_dims {
            None => self.routing_dims = Some(region.dimensions()),
            Some(d) if d != region.dimensions() => {
                return Err(RtiError::InvalidRegion {
                    reason: format!(
                        "routing space has {d} dimensions, region has {}",
                        region.dimensions()
                    ),
                });
            }
            Some(_) => {}
        }
        let handle = RegionHandle::from_raw(self.next_region);
        self.next_region += 1;
        self.regions.insert(handle, (fed, region));
        Ok(handle)
    }

    pub fn modify_region(
        &mut self,
        fed: FederateHandle,
        handle: RegionHandle,
        region: RoutingRegion,
    ) -> Result<(), RtiError> {
        self.check_region(fed, handle)?;
        if self.routing_dims != Some(region.dimensions()) {
            return Err(RtiError::InvalidRegion {
                reason: "dimension change is not allowed".to_string(),
            });
        }
        self.regions.insert(handle, (fed, region));
        Ok(())
    }

    // --- Time management ---------------------------------------------------

    pub fn enable_time_regulation(
        &mut self,
        fed: FederateHandle,
        lookahead: FedTime,
    ) -> Result<(), RtiError> {
        self.state(fed)?;
        self.time.enable_regulation(fed, lookahead)
    }

    pub fn enable_time_constrained(&mut self, fed: FederateHandle) -> Result<(), RtiError> {
        self.state(fed)?;
        self.time.enable_constrained(fed)
    }

    pub fn request_time_advance(
        &mut self,
        fed: FederateHandle,
        to: FedTime,
    ) -> Result<(), RtiError> {
        self.state(fed)?;
        self.time.request_advance(fed, to)?;
        self.dispatch_grants();
        Ok(())
    }

    pub fn federate_time(&self, fed: FederateHandle) -> Result<FedTime, RtiError> {
        self.time
            .state(fed)
            .map(|s| s.current)
            .ok_or(RtiError::NotJoined)
    }

    /// Runs the grant algorithm and, for each granted federate, releases its
    /// due TSO messages (in timestamp order) ahead of the grant callback.
    fn dispatch_grants(&mut self) {
        for (fed, t) in self.time.evaluate() {
            let fs = self
                .federates
                .get_mut(&fed)
                .expect("granted federate exists");
            let due: Vec<(FedTime, u64)> = fs
                .tso_queue
                .range(..=(t, u64::MAX))
                .map(|(k, _)| *k)
                .collect();
            for key in due {
                let cb = fs.tso_queue.remove(&key).expect("key just observed");
                fs.ro_queue.push_back(cb);
            }
            fs.ro_queue
                .push_back(Callback::TimeAdvanceGrant { time: t });
        }
    }

    // --- Synchronization points ---------------------------------------------

    pub fn register_sync_point(
        &mut self,
        fed: FederateHandle,
        label: &str,
    ) -> Result<(), RtiError> {
        self.state(fed)?;
        if self.sync_points.contains_key(label) {
            return Err(RtiError::InvalidSyncPoint {
                label: label.to_string(),
            });
        }
        self.sync_points.insert(label.to_string(), BTreeSet::new());
        for fs in self.federates.values_mut() {
            fs.ro_queue.push_back(Callback::SyncPointAnnounced {
                label: label.to_string(),
            });
        }
        Ok(())
    }

    pub fn achieve_sync_point(&mut self, fed: FederateHandle, label: &str) -> Result<(), RtiError> {
        self.state(fed)?;
        let achieved =
            self.sync_points
                .get_mut(label)
                .ok_or_else(|| RtiError::InvalidSyncPoint {
                    label: label.to_string(),
                })?;
        achieved.insert(fed);
        self.settle_sync_points();
        Ok(())
    }

    fn settle_sync_points(&mut self) {
        let joined: BTreeSet<FederateHandle> = self.federates.keys().copied().collect();
        let complete: Vec<String> = self
            .sync_points
            .iter()
            .filter(|(_, achieved)| joined.iter().all(|f| achieved.contains(f)))
            .map(|(label, _)| label.clone())
            .collect();
        for label in complete {
            self.sync_points.remove(&label);
            for fs in self.federates.values_mut() {
                fs.ro_queue.push_back(Callback::FederationSynchronized {
                    label: label.clone(),
                });
            }
        }
    }

    // --- Callback delivery ---------------------------------------------------

    pub fn drain_callbacks(&mut self, fed: FederateHandle) -> Result<Vec<Callback>, RtiError> {
        let fs = self.state_mut(fed)?;
        Ok(fs.ro_queue.drain(..).collect())
    }
}
