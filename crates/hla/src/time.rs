use std::fmt;
use std::ops::{Add, Sub};

/// A point on the federation time axis.
///
/// Stored as integer microseconds so grants, lookahead arithmetic and TSO
/// ordering are exact — HLA's conservative algorithms are only correct when
/// time comparisons are.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Default)]
pub struct FedTime {
    micros: u64,
}

impl FedTime {
    /// Federation time zero (the value joined federates start at).
    pub const ZERO: FedTime = FedTime { micros: 0 };

    /// The latest representable time.
    pub const MAX: FedTime = FedTime { micros: u64::MAX };

    /// Creates a time from whole microseconds.
    #[must_use]
    pub const fn from_micros(micros: u64) -> Self {
        FedTime { micros }
    }

    /// Creates a time from whole seconds.
    #[must_use]
    pub const fn from_secs(secs: u64) -> Self {
        FedTime {
            micros: secs * 1_000_000,
        }
    }

    /// Creates a time from fractional seconds, rounding to the nearest
    /// microsecond; non-finite or negative values clamp to zero.
    #[must_use]
    pub fn from_secs_f64(secs: f64) -> Self {
        if !secs.is_finite() || secs <= 0.0 {
            return FedTime::ZERO;
        }
        FedTime {
            micros: (secs * 1e6).round() as u64,
        }
    }

    /// This time in whole microseconds.
    #[must_use]
    pub const fn as_micros(self) -> u64 {
        self.micros
    }

    /// This time in fractional seconds.
    #[must_use]
    pub fn as_secs_f64(self) -> f64 {
        self.micros as f64 / 1e6
    }

    /// Saturating addition (useful for `current + lookahead` bounds).
    #[must_use]
    pub const fn saturating_add(self, rhs: FedTime) -> FedTime {
        FedTime {
            micros: self.micros.saturating_add(rhs.micros),
        }
    }
}

impl Add for FedTime {
    type Output = FedTime;

    fn add(self, rhs: FedTime) -> FedTime {
        FedTime {
            micros: self
                .micros
                .checked_add(rhs.micros)
                .expect("federation time overflow"),
        }
    }
}

impl Sub for FedTime {
    type Output = FedTime;

    /// # Panics
    ///
    /// Panics on underflow.
    fn sub(self, rhs: FedTime) -> FedTime {
        FedTime {
            micros: self
                .micros
                .checked_sub(rhs.micros)
                .expect("federation time underflow"),
        }
    }
}

impl fmt::Display for FedTime {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "t={:.6}", self.as_secs_f64())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn conversions_are_exact() {
        let t = FedTime::from_secs_f64(2.5);
        assert_eq!(t.as_micros(), 2_500_000);
        assert_eq!(t, FedTime::from_micros(2_500_000));
        assert_eq!(FedTime::from_secs(2), FedTime::from_secs_f64(2.0));
    }

    #[test]
    fn ordering_is_exact() {
        assert!(FedTime::from_micros(1) > FedTime::ZERO);
        assert!(FedTime::from_secs(1) < FedTime::from_secs_f64(1.0000005));
    }

    #[test]
    fn negative_clamps_to_zero() {
        assert_eq!(FedTime::from_secs_f64(-1.0), FedTime::ZERO);
        assert_eq!(FedTime::from_secs_f64(f64::NAN), FedTime::ZERO);
    }

    #[test]
    fn saturating_add_caps_at_max() {
        assert_eq!(
            FedTime::MAX.saturating_add(FedTime::from_secs(1)),
            FedTime::MAX
        );
    }

    #[test]
    fn arithmetic() {
        let a = FedTime::from_secs(3);
        let b = FedTime::from_secs(1);
        assert_eq!(a + b, FedTime::from_secs(4));
        assert_eq!(a - b, FedTime::from_secs(2));
    }

    #[test]
    fn display_in_seconds() {
        assert_eq!(FedTime::from_secs_f64(1.5).to_string(), "t=1.500000");
    }
}
