//! Routing regions for data distribution management (DDM).
//!
//! HLA 1.3's DDM service lets a subscriber declare *where* in a routing
//! space it is interested: an update tagged with a region is delivered only
//! to subscribers whose regions overlap. It is the RTI-level counterpart of
//! the paper's theme — interest-based traffic reduction — and lets a grid
//! broker subscribe to one campus area instead of every node everywhere.

use crate::RtiError;

/// An axis-aligned box in the federation's routing space.
///
/// Dimensionality is fixed per federation by the first region created; the
/// campus experiments use two dimensions (x, y in metres).
///
/// # Examples
///
/// ```
/// use mobigrid_hla::RoutingRegion;
///
/// let west = RoutingRegion::rectangle(0.0, 250.0, 0.0, 450.0).unwrap();
/// let east = RoutingRegion::rectangle(250.0, 500.0, 0.0, 450.0).unwrap();
/// assert!(west.overlaps(&east)); // they share the x = 250 boundary
/// let p = RoutingRegion::point(&[100.0, 100.0]);
/// assert!(west.overlaps(&p));
/// assert!(!east.overlaps(&p));
/// ```
#[derive(Debug, Clone, PartialEq)]
pub struct RoutingRegion {
    /// Inclusive `(lower, upper)` extent per dimension.
    extents: Vec<(f64, f64)>,
}

impl RoutingRegion {
    /// Creates a region from per-dimension `(lower, upper)` extents.
    ///
    /// # Errors
    ///
    /// Returns [`RtiError::InvalidRegion`] for empty extents, non-finite
    /// bounds, or inverted intervals.
    pub fn new(extents: Vec<(f64, f64)>) -> Result<Self, RtiError> {
        if extents.is_empty() {
            return Err(RtiError::InvalidRegion {
                reason: "region needs at least one dimension".to_string(),
            });
        }
        for (lo, hi) in &extents {
            if !lo.is_finite() || !hi.is_finite() || lo > hi {
                return Err(RtiError::InvalidRegion {
                    reason: format!("bad extent ({lo}, {hi})"),
                });
            }
        }
        Ok(RoutingRegion { extents })
    }

    /// Convenience constructor for the 2-D case.
    ///
    /// # Errors
    ///
    /// Same contract as [`RoutingRegion::new`].
    pub fn rectangle(x_lo: f64, x_hi: f64, y_lo: f64, y_hi: f64) -> Result<Self, RtiError> {
        RoutingRegion::new(vec![(x_lo, x_hi), (y_lo, y_hi)])
    }

    /// A degenerate region containing exactly one point — how an update at
    /// a known location is tagged.
    #[must_use]
    pub fn point(coordinates: &[f64]) -> Self {
        RoutingRegion {
            extents: coordinates.iter().map(|&c| (c, c)).collect(),
        }
    }

    /// Number of routing-space dimensions.
    #[must_use]
    pub fn dimensions(&self) -> usize {
        self.extents.len()
    }

    /// The per-dimension extents.
    #[must_use]
    pub fn extents(&self) -> &[(f64, f64)] {
        &self.extents
    }

    /// Whether two regions share any point. Regions of different
    /// dimensionality never overlap (they live in different routing
    /// spaces).
    #[must_use]
    pub fn overlaps(&self, other: &RoutingRegion) -> bool {
        self.extents.len() == other.extents.len()
            && self
                .extents
                .iter()
                .zip(&other.extents)
                .all(|((alo, ahi), (blo, bhi))| alo <= bhi && ahi >= blo)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn rejects_degenerate_definitions() {
        assert!(RoutingRegion::new(vec![]).is_err());
        assert!(RoutingRegion::new(vec![(1.0, 0.0)]).is_err());
        assert!(RoutingRegion::new(vec![(0.0, f64::INFINITY)]).is_err());
        assert!(RoutingRegion::new(vec![(0.0, 0.0)]).is_ok());
    }

    #[test]
    fn overlap_is_inclusive_at_boundaries() {
        let a = RoutingRegion::rectangle(0.0, 1.0, 0.0, 1.0).unwrap();
        let b = RoutingRegion::rectangle(1.0, 2.0, 0.0, 1.0).unwrap();
        let c = RoutingRegion::rectangle(1.1, 2.0, 0.0, 1.0).unwrap();
        assert!(a.overlaps(&b));
        assert!(!a.overlaps(&c));
    }

    #[test]
    fn overlap_requires_all_dimensions() {
        let a = RoutingRegion::rectangle(0.0, 1.0, 0.0, 1.0).unwrap();
        let b = RoutingRegion::rectangle(0.0, 1.0, 2.0, 3.0).unwrap();
        assert!(!a.overlaps(&b));
    }

    #[test]
    fn dimension_mismatch_never_overlaps() {
        let a = RoutingRegion::new(vec![(0.0, 10.0)]).unwrap();
        let b = RoutingRegion::rectangle(0.0, 10.0, 0.0, 10.0).unwrap();
        assert!(!a.overlaps(&b));
    }

    #[test]
    fn point_regions_work_like_points() {
        let area = RoutingRegion::rectangle(0.0, 10.0, 0.0, 10.0).unwrap();
        assert!(area.overlaps(&RoutingRegion::point(&[5.0, 5.0])));
        assert!(!area.overlaps(&RoutingRegion::point(&[5.0, 11.0])));
        assert_eq!(RoutingRegion::point(&[1.0, 2.0]).dimensions(), 2);
    }

    #[test]
    fn overlap_is_symmetric() {
        let a = RoutingRegion::rectangle(0.0, 5.0, 0.0, 5.0).unwrap();
        let b = RoutingRegion::rectangle(3.0, 8.0, 3.0, 8.0).unwrap();
        assert_eq!(a.overlaps(&b), b.overlaps(&a));
    }
}
