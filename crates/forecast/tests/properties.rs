//! Property-based tests for the forecasting substrate.

use mobigrid_forecast::{
    metrics, BrownDouble, BrownPositionEstimator, Forecaster, HoltLinear, PositionEstimator,
    SingleExponential,
};
use mobigrid_geo::Point;
use proptest::prelude::*;

proptest! {
    #[test]
    fn ses_level_stays_within_observed_range(
        alpha in 0.01..1.0f64,
        xs in prop::collection::vec(-1e3..1e3f64, 1..100),
    ) {
        let mut ses = SingleExponential::new(alpha).unwrap();
        for x in &xs {
            ses.observe(*x);
        }
        let lo = xs.iter().cloned().fold(f64::INFINITY, f64::min);
        let hi = xs.iter().cloned().fold(f64::NEG_INFINITY, f64::max);
        let level = ses.level().unwrap();
        prop_assert!(level >= lo - 1e-9 && level <= hi + 1e-9);
    }

    #[test]
    fn brown_is_exact_on_linear_signals_after_convergence(
        alpha in 0.2..0.9f64,
        slope in -10.0..10.0f64,
        intercept in -100.0..100.0f64,
    ) {
        let mut b = BrownDouble::new(alpha).unwrap();
        for t in 0..400 {
            b.observe(intercept + slope * t as f64);
        }
        let pred = b.forecast(1.0).unwrap();
        let truth = intercept + slope * 400.0;
        prop_assert!((pred - truth).abs() < 1e-3 * (1.0 + truth.abs()));
    }

    #[test]
    fn brown_and_holt_agree_on_linear_signals(slope in -5.0..5.0f64) {
        let mut b = BrownDouble::new(0.5).unwrap();
        let mut h = HoltLinear::new(0.5, 0.5).unwrap();
        for t in 0..300 {
            let x = slope * t as f64;
            b.observe(x);
            h.observe(x);
        }
        let pb = b.forecast(1.0).unwrap();
        let ph = h.forecast(1.0).unwrap();
        prop_assert!((pb - ph).abs() < 1e-3 * (1.0 + pb.abs()));
    }

    #[test]
    fn forecast_is_linear_in_horizon(
        alpha in 0.2..0.8f64,
        xs in prop::collection::vec(-100.0..100.0f64, 3..50),
    ) {
        let mut b = BrownDouble::new(alpha).unwrap();
        for x in &xs {
            b.observe(*x);
        }
        let f0 = b.forecast(0.0).unwrap();
        let f1 = b.forecast(1.0).unwrap();
        let f2 = b.forecast(2.0).unwrap();
        // level + h*trend is affine in h.
        prop_assert!(((f2 - f1) - (f1 - f0)).abs() < 1e-9 * (1.0 + f2.abs()));
    }

    #[test]
    fn brown_position_estimate_is_continuous_in_time(
        speed in 0.1..10.0f64,
        heading_deg in 0.0..360.0f64,
    ) {
        let h = mobigrid_geo::Heading::from_degrees(heading_deg);
        let v = mobigrid_geo::Vec2::from_polar(speed, h);
        let mut est = BrownPositionEstimator::new(0.5).unwrap();
        for t in 0..20 {
            est.observe(t as f64, Point::ORIGIN + v * (t as f64));
        }
        let p1 = est.estimate(20.0).unwrap();
        let p2 = est.estimate(20.001).unwrap();
        prop_assert!(p1.distance_to(p2) < 0.1);
    }

    #[test]
    fn rmse_bounds_mae(
        pairs in prop::collection::vec((-1e3..1e3f64, -1e3..1e3f64), 1..100)
    ) {
        let (a, e): (Vec<f64>, Vec<f64>) = pairs.into_iter().unzip();
        prop_assert!(metrics::rmse(&a, &e) + 1e-9 >= metrics::mae(&a, &e));
        prop_assert!(metrics::max_abs_error(&a, &e) + 1e-9 >= metrics::rmse(&a, &e));
    }

    #[test]
    fn rmse_is_translation_invariant(
        pairs in prop::collection::vec((-1e3..1e3f64, -1e3..1e3f64), 1..100),
        shift in -1e3..1e3f64,
    ) {
        let (a, e): (Vec<f64>, Vec<f64>) = pairs.into_iter().unzip();
        let a2: Vec<f64> = a.iter().map(|x| x + shift).collect();
        let e2: Vec<f64> = e.iter().map(|x| x + shift).collect();
        prop_assert!((metrics::rmse(&a, &e) - metrics::rmse(&a2, &e2)).abs() < 1e-6);
    }
}
