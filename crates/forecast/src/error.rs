use std::error::Error;
use std::fmt;

/// Errors from constructing or fitting forecasters.
#[derive(Debug, Clone, PartialEq)]
#[non_exhaustive]
pub enum ForecastError {
    /// A smoothing factor must lie in `(0, 1]`.
    InvalidSmoothingFactor {
        /// The rejected value.
        value: f64,
    },
    /// An autoregressive model needs a positive order.
    InvalidOrder {
        /// The rejected order.
        order: usize,
    },
    /// The linear system arising in a least-squares fit was singular.
    SingularSystem,
    /// Not enough observations to fit the requested model.
    NotEnoughData {
        /// Observations required.
        needed: usize,
        /// Observations available.
        got: usize,
    },
}

impl fmt::Display for ForecastError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            ForecastError::InvalidSmoothingFactor { value } => {
                write!(f, "smoothing factor must be in (0, 1], got {value}")
            }
            ForecastError::InvalidOrder { order } => {
                write!(f, "autoregressive order must be positive, got {order}")
            }
            ForecastError::SingularSystem => write!(f, "least-squares system was singular"),
            ForecastError::NotEnoughData { needed, got } => {
                write!(f, "model needs {needed} observations, got {got}")
            }
        }
    }
}

impl Error for ForecastError {}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn messages_are_informative() {
        let e = ForecastError::InvalidSmoothingFactor { value: 1.5 };
        assert!(e.to_string().contains("1.5"));
    }

    #[test]
    fn error_is_send_sync() {
        fn check<T: Send + Sync>() {}
        check::<ForecastError>();
    }
}
