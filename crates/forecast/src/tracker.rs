use mobigrid_geo::{Heading, Point, Vec2};

use crate::{BrownDouble, ForecastError, Forecaster, SingleExponential};

/// A 2-D position estimator: the broker-side component that answers "where is
/// this node *now*" from the (filtered) stream of location updates it has
/// seen.
///
/// Implementations receive timestamped observations via
/// [`PositionEstimator::observe`] — one per location update that *reached*
/// the broker — and extrapolate to any later time via
/// [`PositionEstimator::estimate`].
pub trait PositionEstimator {
    /// Feeds a received location update.
    ///
    /// Observations must arrive in non-decreasing time order.
    fn observe(&mut self, time_s: f64, position: Point);

    /// Estimates the position at `time_s` (typically later than the last
    /// observation), or `None` before any observation.
    fn estimate(&self, time_s: f64) -> Option<Point>;

    /// Supplies prior knowledge of where the node *lives* (e.g. the centre
    /// of its registered home region). Estimators that maintain a
    /// long-horizon anchor fold this in as a prior; the default ignores it.
    fn set_home_anchor(&mut self, anchor: Point) {
        let _ = anchor;
    }

    /// Forgets all state.
    fn reset(&mut self);
}

/// The naive estimator: a node is wherever it last reported.
///
/// This is what a broker *without* a location estimator effectively does,
/// and is the paper's "without LE" arm in Figures 7–9.
///
/// # Examples
///
/// ```
/// use mobigrid_forecast::{LastKnown, PositionEstimator};
/// use mobigrid_geo::Point;
///
/// let mut lk = LastKnown::new();
/// lk.observe(0.0, Point::new(1.0, 1.0));
/// lk.observe(5.0, Point::new(9.0, 2.0));
/// assert_eq!(lk.estimate(100.0), Some(Point::new(9.0, 2.0)));
/// ```
#[derive(Debug, Clone, Default, PartialEq)]
pub struct LastKnown {
    last: Option<Point>,
}

impl LastKnown {
    /// Creates an estimator with no observations.
    #[must_use]
    pub fn new() -> Self {
        LastKnown::default()
    }
}

impl PositionEstimator for LastKnown {
    fn observe(&mut self, _time_s: f64, position: Point) {
        self.last = Some(position);
    }

    fn estimate(&self, _time_s: f64) -> Option<Point> {
        self.last
    }

    fn reset(&mut self) {
        self.last = None;
    }
}

/// Dead reckoning: extrapolates along the velocity between the last two
/// observations.
///
/// Cheap and accurate for straight-line motion, but it never forgets a turn —
/// a single noisy update sends the estimate off at full speed in the wrong
/// direction. Included as the middle rung between [`LastKnown`] and the
/// paper's smoothed estimator.
#[derive(Debug, Clone, Default, PartialEq)]
pub struct DeadReckoning {
    last: Option<(f64, Point)>,
    velocity: Vec2,
}

impl DeadReckoning {
    /// Creates an estimator with no observations.
    #[must_use]
    pub fn new() -> Self {
        DeadReckoning::default()
    }
}

impl PositionEstimator for DeadReckoning {
    fn observe(&mut self, time_s: f64, position: Point) {
        if let Some((t0, p0)) = self.last {
            let dt = time_s - t0;
            if dt > 0.0 {
                self.velocity = (position - p0) / dt;
            }
        }
        self.last = Some((time_s, position));
    }

    fn estimate(&self, time_s: f64) -> Option<Point> {
        let (t0, p0) = self.last?;
        let dt = (time_s - t0).max(0.0);
        Some(p0 + self.velocity * dt)
    }

    fn reset(&mut self) {
        self.last = None;
        self.velocity = Vec2::ZERO;
    }
}

/// The paper's location estimator: Brown's double exponential smoothing over
/// the node's **speed** and **direction**, advanced from the last reported
/// coordinate by trigonometry (§3.3).
///
/// Direction is smoothed as a continuously *unwrapped* angle so that a node
/// circling through 360° does not confuse the smoother at the 0/2π seam.
/// When the node reports two identical positions (zero speed), the previous
/// direction is retained rather than fabricating one.
///
/// Extrapolation is additionally scaled by a **direction-consistency gate**:
/// an exponentially smoothed mean of the unit heading vectors, whose norm is
/// ≈ 1 for a node walking steadily and ≈ 0 for one milling about at random.
/// A destination-directed walker is extrapolated at full predicted speed,
/// while a random mover degrades gracefully toward "hold the last reported
/// position" — which is the best unbiased guess for confined random motion,
/// and guarantees the estimator is never substantially worse than running no
/// estimator at all. (The paper does not specify how its estimator avoids
/// diverging on the 30 random-movement nodes; this gate is our resolution,
/// documented in `DESIGN.md`.)
///
/// # Examples
///
/// ```
/// use mobigrid_forecast::{BrownPositionEstimator, PositionEstimator};
/// use mobigrid_geo::Point;
///
/// let mut est = BrownPositionEstimator::new(0.5).unwrap();
/// // A node walking east at 2 m/s, reporting every second.
/// for t in 0..20 {
///     est.observe(t as f64, Point::new(2.0 * t as f64, 0.0));
/// }
/// let p = est.estimate(21.0).unwrap();
/// assert!((p.x - 42.0).abs() < 1.0);
/// assert!(p.y.abs() < 0.5);
/// ```
#[derive(Debug, Clone, PartialEq)]
pub struct BrownPositionEstimator {
    speed: BrownDouble,
    direction: BrownDouble,
    last: Option<(f64, Point)>,
    unwrapped_heading: Option<f64>,
    /// Smoothed mean of unit heading vectors; its norm is the
    /// direction-consistency gate.
    dir_mean: Option<Vec2>,
    consistency_alpha: f64,
    /// Time constant τ of the silence decay: extrapolated displacement
    /// saturates at `v̂·τ` as dead time grows.
    silence_tau_secs: f64,
    /// Expected observation spacing; gaps meaningfully longer than this are
    /// silences.
    nominal_dt: f64,
    /// Smoothed mean speed *across silences* (displacement ÷ gap for gaps
    /// longer than `nominal_dt`). Extrapolation during a silence uses this
    /// instead of the send-time speed: an update being filtered is evidence
    /// the node slowed below its distance threshold, so the speed observed
    /// while it was reporting every second overestimates its speed now.
    silence_speed: SingleExponential,
    /// Running mean of every observed position — the long-horizon anchor.
    mean_pos: Point,
    obs_count: u64,
    /// Prior belief of where the node lives (its home region's centre),
    /// folded into the anchor with [`Self::HOME_PRIOR_WEIGHT`]
    /// pseudo-observations.
    home_prior: Option<Point>,
}

impl BrownPositionEstimator {
    /// Smoothing factor of the direction-consistency gate: deliberately
    /// sluggish so a few chance-aligned random steps don't open the gate.
    pub const DEFAULT_CONSISTENCY_ALPHA: f64 = 0.15;

    /// Weight of the home-anchor prior, in pseudo-observations: a node that
    /// has reported fewer than this many positions is anchored mostly by
    /// its home region; a long-observed node by its own history.
    pub const HOME_PRIOR_WEIGHT: f64 = 60.0;

    /// Default silence time constant τ in seconds.
    ///
    /// Estimation is only invoked when an update was *filtered*, and under
    /// the paper's distance filter a filtered second means the node moved
    /// less than its threshold that second — silence is evidence of slow
    /// movement. The extrapolated displacement therefore saturates:
    /// `v̂·τ·(1 − e^(−Δt/τ))`, which is ≈ `v̂·Δt` for fresh gaps and at most
    /// `v̂·τ` for long ones, rather than walking the node off the map at its
    /// pre-silence speed.
    pub const DEFAULT_SILENCE_TAU_SECS: f64 = 15.0;

    /// Creates an estimator with smoothing factor `alpha ∈ (0, 1)` shared by
    /// the speed and direction smoothers.
    ///
    /// # Errors
    ///
    /// Returns [`ForecastError::InvalidSmoothingFactor`] for invalid `alpha`.
    pub fn new(alpha: f64) -> Result<Self, ForecastError> {
        Ok(BrownPositionEstimator {
            speed: BrownDouble::new(alpha)?,
            direction: BrownDouble::new(alpha)?,
            last: None,
            unwrapped_heading: None,
            dir_mean: None,
            consistency_alpha: Self::DEFAULT_CONSISTENCY_ALPHA,
            silence_tau_secs: Self::DEFAULT_SILENCE_TAU_SECS,
            nominal_dt: 1.0,
            silence_speed: SingleExponential::new(0.3).expect("valid constant"),
            mean_pos: Point::ORIGIN,
            obs_count: 0,
            home_prior: None,
        })
    }

    /// The blended long-horizon anchor: observation mean shrunk toward the
    /// home prior (when one is set).
    fn anchor(&self) -> Option<Point> {
        let n = self.obs_count as f64;
        match self.home_prior {
            Some(prior) => {
                let k = Self::HOME_PRIOR_WEIGHT;
                let total = k + n;
                Some(Point::new(
                    (k * prior.x + n * self.mean_pos.x) / total,
                    (k * prior.y + n * self.mean_pos.y) / total,
                ))
            }
            None if self.obs_count >= 8 => Some(self.mean_pos),
            None => None,
        }
    }

    /// Overrides the expected observation spacing in seconds (default 1.0,
    /// the campus experiments' tick).
    ///
    /// # Panics
    ///
    /// Panics when `secs` is not strictly positive.
    #[must_use]
    pub fn with_nominal_dt(mut self, secs: f64) -> Self {
        assert!(
            secs.is_finite() && secs > 0.0,
            "nominal spacing must be positive"
        );
        self.nominal_dt = secs;
        self
    }

    /// Overrides the silence time constant τ in seconds.
    ///
    /// # Panics
    ///
    /// Panics when `secs` is not strictly positive.
    #[must_use]
    pub fn with_silence_tau(mut self, secs: f64) -> Self {
        assert!(
            secs.is_finite() && secs > 0.0,
            "silence time constant must be positive"
        );
        self.silence_tau_secs = secs;
        self
    }

    /// Overrides the consistency-gate smoothing factor (must be in
    /// `(0, 1]`).
    ///
    /// # Errors
    ///
    /// Returns [`ForecastError::InvalidSmoothingFactor`] for values outside
    /// `(0, 1]`.
    pub fn with_consistency_alpha(mut self, alpha: f64) -> Result<Self, ForecastError> {
        if !alpha.is_finite() || alpha <= 0.0 || alpha > 1.0 {
            return Err(ForecastError::InvalidSmoothingFactor { value: alpha });
        }
        self.consistency_alpha = alpha;
        Ok(self)
    }

    /// The current direction-consistency gate in `[0, 1]`: ≈ 1 for steady
    /// walkers, ≈ 0 for random movers.
    #[must_use]
    pub fn direction_consistency(&self) -> f64 {
        self.dir_mean.map_or(0.0, |v| v.norm().clamp(0.0, 1.0))
    }

    /// The current smoothed speed estimate in m/s, if warmed up.
    #[must_use]
    pub fn speed_estimate(&self) -> Option<f64> {
        self.speed.level().map(|v| v.max(0.0))
    }

    /// The current smoothed heading estimate, if warmed up.
    #[must_use]
    pub fn heading_estimate(&self) -> Option<Heading> {
        self.direction.level().map(Heading::from_radians)
    }
}

impl PositionEstimator for BrownPositionEstimator {
    fn observe(&mut self, time_s: f64, position: Point) {
        if let Some((t0, p0)) = self.last {
            let dt = time_s - t0;
            if dt > 0.0 {
                let delta = position - p0;
                let speed = delta.norm() / dt;
                self.speed.observe(speed);
                if dt > 1.5 * self.nominal_dt {
                    // This update ends a silence: its mean speed is a
                    // direct sample of how fast the node moves while its
                    // updates are being filtered.
                    self.silence_speed.observe(speed);
                }

                // Unwrap the heading so the smoother sees a continuous angle.
                if let Some(h) = delta.heading() {
                    // Manoeuvre detection: when the observed heading jumps
                    // more than 90° away from the current direction
                    // forecast, the node has turned (a crossroads, a road
                    // end). Chasing the jump through the smoother would
                    // leave the forecast pointing sideways for several
                    // updates, so reset the direction state to the new
                    // heading instead — the standard track-reset used by
                    // manoeuvring-target filters.
                    if let Some(forecast) = self.direction.forecast(0.0) {
                        let predicted = Heading::from_radians(forecast);
                        if predicted.angle_to(h) > std::f64::consts::FRAC_PI_2 {
                            self.direction.reset();
                            self.unwrapped_heading = None;
                        }
                    }
                    let unwrapped = match self.unwrapped_heading {
                        None => h.radians(),
                        Some(prev) => {
                            let prev_heading = Heading::from_radians(prev);
                            prev + prev_heading.signed_angle_to(h)
                        }
                    };
                    self.unwrapped_heading = Some(unwrapped);
                    self.direction.observe(unwrapped);
                    // Fold the unit heading into the consistency gate.
                    let unit = h.unit_vector();
                    let a = self.consistency_alpha;
                    self.dir_mean = Some(match self.dir_mean {
                        None => unit,
                        Some(prev) => prev * (1.0 - a) + unit * a,
                    });
                } else if let Some(prev) = self.unwrapped_heading {
                    // Stationary step: direction is unchanged.
                    self.direction.observe(prev);
                }
            }
        }
        self.obs_count += 1;
        let n = self.obs_count as f64;
        self.mean_pos = Point::new(
            self.mean_pos.x + (position.x - self.mean_pos.x) / n,
            self.mean_pos.y + (position.y - self.mean_pos.y) / n,
        );
        self.last = Some((time_s, position));
    }

    fn estimate(&self, time_s: f64) -> Option<Point> {
        let (t0, p0) = self.last?;
        let dt = (time_s - t0).max(0.0);
        let (Some(speed), Some(dir)) = (self.speed.forecast(1.0), self.direction.forecast(1.0))
        else {
            // Not warmed up (fewer than two observations): fall back to the
            // last known coordinate, matching the broker's behaviour before
            // a node has any motion history.
            return Some(p0);
        };
        let speed = speed.max(0.0);
        // Once a silence is in progress (estimation *is* the silent case),
        // the learned silence speed is the better predictor; bound it by
        // the send-time speed so a single long-gap outlier cannot inflate
        // it.
        let speed = match self.silence_speed.forecast(0.0) {
            Some(s) => s.clamp(0.0, speed.max(0.0)).min(speed),
            None => speed,
        };
        let heading = Heading::from_radians(dir);
        // Silence decay: ≈ dt while the gap is fresh, saturating at τ.
        let tau = self.silence_tau_secs;
        let effective_dt = tau * (1.0 - (-dt / tau).exp());
        // The gate squares so that half-coherent motion extrapolates only a
        // quarter of the way — conservative by design.
        let gate = self.direction_consistency().powi(2);
        let linear = p0 + Vec2::from_polar(speed * effective_dt * gate, heading);

        // Long-horizon blend: once the last report is several τ stale, no
        // trajectory extrapolation is credible any more, but the node's
        // historical mean position (shrunk toward its home-region prior) is
        // — a patroller averages the road middle, an indoor wanderer its
        // building's centre. The Gaussian weight keeps short-horizon
        // behaviour purely linear (w ≈ 1 − (dt/2τ)², so a 1-second gap is
        // unaffected).
        match self.anchor() {
            Some(anchor) => {
                let w = (-(dt / (2.0 * tau)).powi(2)).exp();
                Some(linear.lerp(anchor, 1.0 - w))
            }
            None => Some(linear),
        }
    }

    fn set_home_anchor(&mut self, anchor: Point) {
        self.home_prior = Some(anchor);
    }

    fn reset(&mut self) {
        self.speed.reset();
        self.direction.reset();
        self.last = None;
        self.unwrapped_heading = None;
        self.dir_mean = None;
        self.silence_speed.reset();
        self.mean_pos = Point::ORIGIN;
        self.obs_count = 0;
        // The home prior is configuration, not history: it survives reset.
    }
}

/// A generic 2-D estimator that smooths the x and y coordinates
/// independently with any scalar [`Forecaster`].
///
/// Used by the estimator ablation bench to pit coordinate-space smoothing
/// against the paper's speed/direction formulation.
#[derive(Debug, Clone)]
pub struct AxisSmoothing<F> {
    x: F,
    y: F,
    nominal_dt: f64,
    last: Option<(f64, Point)>,
}

impl<F: Forecaster> AxisSmoothing<F> {
    /// Wraps per-axis forecasters; `nominal_dt` is the expected observation
    /// spacing in seconds (used to convert a wall-clock horizon into
    /// forecast steps).
    ///
    /// # Panics
    ///
    /// Panics when `nominal_dt` is not strictly positive.
    pub fn new(x: F, y: F, nominal_dt: f64) -> Self {
        assert!(
            nominal_dt > 0.0 && nominal_dt.is_finite(),
            "nominal_dt must be positive"
        );
        AxisSmoothing {
            x,
            y,
            nominal_dt,
            last: None,
        }
    }
}

impl<F: Forecaster> PositionEstimator for AxisSmoothing<F> {
    fn observe(&mut self, time_s: f64, position: Point) {
        self.x.observe(position.x);
        self.y.observe(position.y);
        self.last = Some((time_s, position));
    }

    fn estimate(&self, time_s: f64) -> Option<Point> {
        let (t0, p0) = self.last?;
        let horizon = ((time_s - t0).max(0.0)) / self.nominal_dt;
        match (self.x.forecast(horizon), self.y.forecast(horizon)) {
            (Some(x), Some(y)) => Some(Point::new(x, y)),
            _ => Some(p0),
        }
    }

    fn reset(&mut self) {
        self.x.reset();
        self.y.reset();
        self.last = None;
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::HoltLinear;

    #[test]
    fn last_known_before_any_observation() {
        let lk = LastKnown::new();
        assert_eq!(lk.estimate(0.0), None);
    }

    #[test]
    fn dead_reckoning_extrapolates_linearly() {
        let mut dr = DeadReckoning::new();
        dr.observe(0.0, Point::new(0.0, 0.0));
        dr.observe(1.0, Point::new(2.0, 0.0));
        let p = dr.estimate(3.0).unwrap();
        assert!((p.x - 6.0).abs() < 1e-12);
    }

    #[test]
    fn dead_reckoning_single_observation_is_static() {
        let mut dr = DeadReckoning::new();
        dr.observe(0.0, Point::new(5.0, 5.0));
        assert_eq!(dr.estimate(10.0), Some(Point::new(5.0, 5.0)));
    }

    #[test]
    fn brown_tracks_straight_walk() {
        let mut est = BrownPositionEstimator::new(0.5).unwrap();
        for t in 0..30 {
            est.observe(t as f64, Point::new(0.0, 1.5 * t as f64));
        }
        let p = est.estimate(32.0).unwrap();
        assert!((p.y - 48.0).abs() < 1.0, "y = {}", p.y);
        assert!(p.x.abs() < 1.0);
    }

    #[test]
    fn brown_speed_estimate_converges() {
        let mut est = BrownPositionEstimator::new(0.4).unwrap();
        for t in 0..60 {
            est.observe(t as f64, Point::new(3.0 * t as f64, 0.0));
        }
        assert!((est.speed_estimate().unwrap() - 3.0).abs() < 1e-6);
        assert!(est.heading_estimate().unwrap().angle_to(Heading::EAST) < 1e-6);
    }

    #[test]
    fn brown_single_observation_falls_back_to_last_position() {
        let mut est = BrownPositionEstimator::new(0.5).unwrap();
        est.observe(0.0, Point::new(7.0, 8.0));
        assert_eq!(est.estimate(5.0), Some(Point::new(7.0, 8.0)));
    }

    #[test]
    fn brown_handles_stationary_node() {
        let mut est = BrownPositionEstimator::new(0.5).unwrap();
        for t in 0..10 {
            est.observe(t as f64, Point::new(4.0, 4.0));
        }
        let p = est.estimate(20.0).unwrap();
        assert!(p.distance_to(Point::new(4.0, 4.0)) < 1e-6);
    }

    #[test]
    fn brown_heading_survives_wraparound() {
        // Walk in a slow circle crossing the 0/2pi seam repeatedly; the
        // estimate should stay within the circle's neighbourhood.
        let mut est = BrownPositionEstimator::new(0.5).unwrap();
        let r = 10.0;
        for t in 0..200 {
            let angle = 0.1 * t as f64;
            est.observe(t as f64, Point::new(r * angle.cos(), r * angle.sin()));
        }
        let p = est.estimate(201.0).unwrap();
        assert!(p.distance_to(Point::ORIGIN) < 3.0 * r);
    }

    #[test]
    fn brown_ignores_non_advancing_time() {
        let mut est = BrownPositionEstimator::new(0.5).unwrap();
        est.observe(1.0, Point::new(0.0, 0.0));
        est.observe(1.0, Point::new(100.0, 0.0)); // dt = 0: no velocity sample
        est.observe(2.0, Point::new(101.0, 0.0));
        // Speed from the only valid interval is 1 m/s, not 100.
        assert!((est.speed_estimate().unwrap() - 1.0).abs() < 1e-9);
    }

    #[test]
    fn axis_smoothing_with_holt_tracks_diagonal() {
        let make = || HoltLinear::new(0.7, 0.3).unwrap();
        let mut est = AxisSmoothing::new(make(), make(), 1.0);
        for t in 0..100 {
            est.observe(t as f64, Point::new(t as f64, 2.0 * t as f64));
        }
        let p = est.estimate(101.0).unwrap();
        assert!((p.x - 101.0).abs() < 1.0);
        assert!((p.y - 202.0).abs() < 2.0);
    }

    #[test]
    fn reset_restores_initial_state() {
        let mut est = BrownPositionEstimator::new(0.5).unwrap();
        est.observe(0.0, Point::new(1.0, 1.0));
        est.observe(1.0, Point::new(2.0, 2.0));
        est.reset();
        assert_eq!(est.estimate(2.0), None);
    }

    #[test]
    fn estimators_are_object_safe() {
        let mut boxed: Vec<Box<dyn PositionEstimator>> = vec![
            Box::new(LastKnown::new()),
            Box::new(DeadReckoning::new()),
            Box::new(BrownPositionEstimator::new(0.5).unwrap()),
        ];
        for est in &mut boxed {
            est.observe(0.0, Point::ORIGIN);
            assert!(est.estimate(1.0).is_some());
        }
    }
}
