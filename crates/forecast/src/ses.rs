use crate::{ForecastError, Forecaster};

/// Single (simple) exponential smoothing.
///
/// Maintains one smoothed level `sₜ = α·xₜ + (1 − α)·sₜ₋₁`. It has no trend
/// term, so every forecast horizon returns the current level — adequate for
/// near-stationary series (a node milling around a lab) but systematically
/// late on trending series (a node walking down a road). The paper's location
/// estimator therefore upgrades to [`BrownDouble`](crate::BrownDouble); this
/// type is the comparison baseline.
///
/// # Examples
///
/// ```
/// use mobigrid_forecast::{Forecaster, SingleExponential};
///
/// let mut ses = SingleExponential::new(0.5).unwrap();
/// ses.observe(10.0);
/// ses.observe(20.0);
/// assert_eq!(ses.forecast(1.0), Some(15.0));
/// ```
#[derive(Debug, Clone, PartialEq)]
pub struct SingleExponential {
    alpha: f64,
    level: Option<f64>,
    count: u64,
}

impl SingleExponential {
    /// Creates a smoother with factor `alpha ∈ (0, 1]`.
    ///
    /// # Errors
    ///
    /// Returns [`ForecastError::InvalidSmoothingFactor`] for `alpha` outside
    /// `(0, 1]` or non-finite.
    pub fn new(alpha: f64) -> Result<Self, ForecastError> {
        if !alpha.is_finite() || alpha <= 0.0 || alpha > 1.0 {
            return Err(ForecastError::InvalidSmoothingFactor { value: alpha });
        }
        Ok(SingleExponential {
            alpha,
            level: None,
            count: 0,
        })
    }

    /// The smoothing factor.
    #[must_use]
    pub fn alpha(&self) -> f64 {
        self.alpha
    }

    /// The current smoothed level, if any observation has been seen.
    #[must_use]
    pub fn level(&self) -> Option<f64> {
        self.level
    }
}

impl Forecaster for SingleExponential {
    fn observe(&mut self, value: f64) {
        self.count += 1;
        self.level = Some(match self.level {
            // Standard initialisation: seed the level with the first sample.
            None => value,
            Some(prev) => self.alpha * value + (1.0 - self.alpha) * prev,
        });
    }

    fn forecast(&self, _horizon: f64) -> Option<f64> {
        self.level
    }

    fn reset(&mut self) {
        self.level = None;
        self.count = 0;
    }

    fn observations(&self) -> u64 {
        self.count
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn rejects_bad_alpha() {
        assert!(SingleExponential::new(0.0).is_err());
        assert!(SingleExponential::new(1.5).is_err());
        assert!(SingleExponential::new(f64::NAN).is_err());
        assert!(SingleExponential::new(1.0).is_ok());
    }

    #[test]
    fn empty_has_no_forecast() {
        let ses = SingleExponential::new(0.3).unwrap();
        assert_eq!(ses.forecast(1.0), None);
        assert_eq!(ses.observations(), 0);
    }

    #[test]
    fn first_observation_seeds_level() {
        let mut ses = SingleExponential::new(0.3).unwrap();
        ses.observe(42.0);
        assert_eq!(ses.level(), Some(42.0));
    }

    #[test]
    fn recurrence_matches_hand_computation() {
        let mut ses = SingleExponential::new(0.2).unwrap();
        ses.observe(10.0); // level = 10
        ses.observe(20.0); // level = 0.2*20 + 0.8*10 = 12
        ses.observe(0.0); //  level = 0.2*0  + 0.8*12 = 9.6
        assert!((ses.level().unwrap() - 9.6).abs() < 1e-12);
    }

    #[test]
    fn alpha_one_tracks_input_exactly() {
        let mut ses = SingleExponential::new(1.0).unwrap();
        for x in [5.0, -3.0, 8.5] {
            ses.observe(x);
            assert_eq!(ses.level(), Some(x));
        }
    }

    #[test]
    fn forecast_is_horizon_independent() {
        let mut ses = SingleExponential::new(0.5).unwrap();
        ses.observe(4.0);
        assert_eq!(ses.forecast(1.0), ses.forecast(100.0));
    }

    #[test]
    fn converges_to_constant_signal() {
        let mut ses = SingleExponential::new(0.4).unwrap();
        for _ in 0..200 {
            ses.observe(7.0);
        }
        assert!((ses.forecast(1.0).unwrap() - 7.0).abs() < 1e-9);
    }

    #[test]
    fn reset_clears_state() {
        let mut ses = SingleExponential::new(0.4).unwrap();
        ses.observe(1.0);
        ses.reset();
        assert_eq!(ses.forecast(1.0), None);
        assert_eq!(ses.observations(), 0);
    }
}
