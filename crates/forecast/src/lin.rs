use crate::ForecastError;

/// Solves the dense linear system `A·x = b` by Gaussian elimination with
/// partial pivoting.
///
/// `a` is a row-major `n × n` matrix. Used by the autoregressive fitter to
/// solve its normal equations; exposed publicly because the experiment
/// harness reuses it for small least-squares fits.
///
/// # Errors
///
/// Returns [`ForecastError::SingularSystem`] when the matrix is singular (or
/// numerically indistinguishable from singular).
///
/// # Panics
///
/// Panics when `a` is not `n × n` for `n = b.len()`.
///
/// # Examples
///
/// ```
/// # fn main() -> Result<(), mobigrid_forecast::ForecastError> {
/// // 2x + y = 5 ; x - y = 1  =>  x = 2, y = 1
/// let x = mobigrid_forecast::solve_linear_system(
///     &[vec![2.0, 1.0], vec![1.0, -1.0]],
///     &[5.0, 1.0],
/// )?;
/// assert!((x[0] - 2.0).abs() < 1e-12);
/// assert!((x[1] - 1.0).abs() < 1e-12);
/// # Ok(())
/// # }
/// ```
pub fn solve_linear_system(a: &[Vec<f64>], b: &[f64]) -> Result<Vec<f64>, ForecastError> {
    let n = b.len();
    assert_eq!(a.len(), n, "matrix must be square and match b");
    for row in a {
        assert_eq!(row.len(), n, "matrix must be square and match b");
    }

    // Augmented working copy.
    let mut m: Vec<Vec<f64>> = a
        .iter()
        .zip(b)
        .map(|(row, rhs)| {
            let mut r = row.clone();
            r.push(*rhs);
            r
        })
        .collect();

    for col in 0..n {
        // Partial pivot: bring the largest remaining entry into place.
        let pivot_row = (col..n)
            .max_by(|&i, &j| {
                m[i][col]
                    .abs()
                    .partial_cmp(&m[j][col].abs())
                    .expect("finite matrix entries")
            })
            .expect("non-empty column range");
        if m[pivot_row][col].abs() < 1e-12 {
            return Err(ForecastError::SingularSystem);
        }
        m.swap(col, pivot_row);

        for row in (col + 1)..n {
            let factor = m[row][col] / m[col][col];
            let (pivot_rows, rest) = m.split_at_mut(row);
            let pivot = &pivot_rows[col];
            for (cell, pivot_cell) in rest[0][col..=n].iter_mut().zip(&pivot[col..=n]) {
                *cell -= factor * pivot_cell;
            }
        }
    }

    // Back substitution.
    let mut x = vec![0.0; n];
    for row in (0..n).rev() {
        let mut acc = m[row][n];
        for k in (row + 1)..n {
            acc -= m[row][k] * x[k];
        }
        x[row] = acc / m[row][row];
    }
    Ok(x)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn solves_identity() {
        let a = vec![vec![1.0, 0.0], vec![0.0, 1.0]];
        let x = solve_linear_system(&a, &[3.0, -7.0]).unwrap();
        assert_eq!(x, vec![3.0, -7.0]);
    }

    #[test]
    fn solves_3x3_system() {
        // x + 2y + 3z = 14 ; 2x + y + z = 7 ; 3x - y + 2z = 7  => (1, 2, 3)
        let a = vec![
            vec![1.0, 2.0, 3.0],
            vec![2.0, 1.0, 1.0],
            vec![3.0, -1.0, 2.0],
        ];
        let x = solve_linear_system(&a, &[14.0, 7.0, 7.0]).unwrap();
        assert!((x[0] - 1.0).abs() < 1e-10);
        assert!((x[1] - 2.0).abs() < 1e-10);
        assert!((x[2] - 3.0).abs() < 1e-10);
    }

    #[test]
    fn pivoting_handles_zero_leading_entry() {
        // First pivot position is zero; naive elimination would divide by 0.
        let a = vec![vec![0.0, 1.0], vec![1.0, 0.0]];
        let x = solve_linear_system(&a, &[2.0, 5.0]).unwrap();
        assert!((x[0] - 5.0).abs() < 1e-12);
        assert!((x[1] - 2.0).abs() < 1e-12);
    }

    #[test]
    fn detects_singular_matrix() {
        let a = vec![vec![1.0, 2.0], vec![2.0, 4.0]];
        assert_eq!(
            solve_linear_system(&a, &[1.0, 2.0]),
            Err(ForecastError::SingularSystem)
        );
    }

    #[test]
    fn solves_1x1() {
        let x = solve_linear_system(&[vec![4.0]], &[8.0]).unwrap();
        assert_eq!(x, vec![2.0]);
    }

    #[test]
    #[should_panic(expected = "square")]
    fn rejects_non_square() {
        let _ = solve_linear_system(&[vec![1.0, 2.0]], &[1.0]);
    }
}
