use crate::{ForecastError, Forecaster};

/// Brown's double exponential smoothing — the paper's location estimator.
///
/// Two cascaded smoothings of the series,
/// `s′ₜ = α·xₜ + (1 − α)·s′ₜ₋₁` and `s″ₜ = α·s′ₜ + (1 − α)·s″ₜ₋₁`,
/// yield a level `aₜ = 2s′ₜ − s″ₜ` and trend `bₜ = α/(1 − α)·(s′ₜ − s″ₜ)`,
/// with forecast `x̂ₜ₊ₕ = aₜ + h·bₜ`. Unlike
/// [`SingleExponential`](crate::SingleExponential) it follows linear trends
/// without lag — exactly the property the grid broker needs to extrapolate a
/// node walking steadily down a road while its location updates are being
/// filtered.
///
/// The paper chose this method over ARIMA because it needs no training
/// dataset and its parameters are trivial to update online (§3.3).
///
/// # Examples
///
/// ```
/// use mobigrid_forecast::{BrownDouble, Forecaster};
///
/// let mut brown = BrownDouble::new(0.6).unwrap();
/// for t in 0..100 {
///     brown.observe(3.0 * t as f64);
/// }
/// // The one-step-ahead forecast tracks the trend.
/// assert!((brown.forecast(1.0).unwrap() - 300.0).abs() < 0.5);
/// ```
#[derive(Debug, Clone, PartialEq)]
pub struct BrownDouble {
    alpha: f64,
    s1: Option<f64>,
    s2: Option<f64>,
    count: u64,
}

impl BrownDouble {
    /// Creates a smoother with factor `alpha ∈ (0, 1)`.
    ///
    /// `alpha = 1` is rejected (the trend term divides by `1 − α`).
    ///
    /// # Errors
    ///
    /// Returns [`ForecastError::InvalidSmoothingFactor`] for `alpha` outside
    /// `(0, 1)` or non-finite.
    pub fn new(alpha: f64) -> Result<Self, ForecastError> {
        if !alpha.is_finite() || alpha <= 0.0 || alpha >= 1.0 {
            return Err(ForecastError::InvalidSmoothingFactor { value: alpha });
        }
        Ok(BrownDouble {
            alpha,
            s1: None,
            s2: None,
            count: 0,
        })
    }

    /// The smoothing factor.
    #[must_use]
    pub fn alpha(&self) -> f64 {
        self.alpha
    }

    /// The current level estimate `aₜ = 2s′ₜ − s″ₜ`.
    #[must_use]
    pub fn level(&self) -> Option<f64> {
        Some(2.0 * self.s1? - self.s2?)
    }

    /// The current per-step trend estimate `bₜ = α/(1 − α)·(s′ₜ − s″ₜ)`.
    #[must_use]
    pub fn trend(&self) -> Option<f64> {
        Some(self.alpha / (1.0 - self.alpha) * (self.s1? - self.s2?))
    }
}

impl Forecaster for BrownDouble {
    fn observe(&mut self, value: f64) {
        self.count += 1;
        let s1 = match self.s1 {
            None => value,
            Some(prev) => self.alpha * value + (1.0 - self.alpha) * prev,
        };
        let s2 = match self.s2 {
            None => s1,
            Some(prev) => self.alpha * s1 + (1.0 - self.alpha) * prev,
        };
        self.s1 = Some(s1);
        self.s2 = Some(s2);
    }

    fn forecast(&self, horizon: f64) -> Option<f64> {
        Some(self.level()? + horizon * self.trend()?)
    }

    fn reset(&mut self) {
        self.s1 = None;
        self.s2 = None;
        self.count = 0;
    }

    fn observations(&self) -> u64 {
        self.count
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn rejects_bad_alpha() {
        assert!(BrownDouble::new(0.0).is_err());
        assert!(BrownDouble::new(1.0).is_err());
        assert!(BrownDouble::new(-0.3).is_err());
        assert!(BrownDouble::new(0.5).is_ok());
    }

    #[test]
    fn empty_has_no_forecast() {
        let b = BrownDouble::new(0.5).unwrap();
        assert_eq!(b.forecast(1.0), None);
        assert_eq!(b.level(), None);
        assert_eq!(b.trend(), None);
    }

    #[test]
    fn first_observation_has_zero_trend() {
        let mut b = BrownDouble::new(0.5).unwrap();
        b.observe(10.0);
        assert_eq!(b.level(), Some(10.0));
        assert_eq!(b.trend(), Some(0.0));
        assert_eq!(b.forecast(5.0), Some(10.0));
    }

    #[test]
    fn recurrence_matches_hand_computation() {
        // alpha = 0.5; x = [2, 4]
        // s1: 2, then 0.5*4 + 0.5*2 = 3
        // s2: 2, then 0.5*3 + 0.5*2 = 2.5
        // level = 2*3 - 2.5 = 3.5 ; trend = 1.0 * (3 - 2.5) = 0.5
        let mut b = BrownDouble::new(0.5).unwrap();
        b.observe(2.0);
        b.observe(4.0);
        assert!((b.level().unwrap() - 3.5).abs() < 1e-12);
        assert!((b.trend().unwrap() - 0.5).abs() < 1e-12);
        assert!((b.forecast(2.0).unwrap() - 4.5).abs() < 1e-12);
    }

    #[test]
    fn converges_on_linear_trend() {
        let mut b = BrownDouble::new(0.4).unwrap();
        for t in 0..300 {
            b.observe(5.0 + 2.0 * t as f64);
        }
        assert!((b.trend().unwrap() - 2.0).abs() < 1e-6);
        let pred = b.forecast(1.0).unwrap();
        let truth = 5.0 + 2.0 * 300.0;
        assert!((pred - truth).abs() < 1e-4);
    }

    #[test]
    fn constant_signal_has_zero_trend() {
        let mut b = BrownDouble::new(0.3).unwrap();
        for _ in 0..100 {
            b.observe(9.0);
        }
        assert!(b.trend().unwrap().abs() < 1e-9);
        assert!((b.forecast(10.0).unwrap() - 9.0).abs() < 1e-9);
    }

    #[test]
    fn reset_clears_state() {
        let mut b = BrownDouble::new(0.3).unwrap();
        b.observe(1.0);
        b.observe(2.0);
        b.reset();
        assert_eq!(b.observations(), 0);
        assert_eq!(b.forecast(1.0), None);
    }

    #[test]
    fn outperforms_single_smoothing_on_trends() {
        use crate::{Forecaster as _, SingleExponential};
        let mut brown = BrownDouble::new(0.4).unwrap();
        let mut ses = SingleExponential::new(0.4).unwrap();
        let mut brown_err = 0.0;
        let mut ses_err = 0.0;
        for t in 0..200 {
            let x = 1.5 * t as f64;
            if t > 10 {
                brown_err += (brown.forecast(1.0).unwrap() - x).abs();
                ses_err += (ses.forecast(1.0).unwrap() - x).abs();
            }
            brown.observe(x);
            ses.observe(x);
        }
        assert!(brown_err < ses_err / 2.0, "brown={brown_err} ses={ses_err}");
    }
}
