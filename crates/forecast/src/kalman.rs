//! A constant-velocity Kalman filter over 2-D position measurements.
//!
//! The textbook comparator for the paper's exponential-smoothing estimator:
//! state `[pₓ, p_y, vₓ, v_y]` with a white-acceleration process model and
//! position-only measurements. Included in the estimator ablation — it is
//! optimal for genuinely constant-velocity motion with Gaussian noise, and
//! instructively *not* optimal for the filtered-LU stream, where silence is
//! correlated with slowdown.

use mobigrid_geo::{Point, Vec2};

use crate::{ForecastError, PositionEstimator};

type Mat4 = [[f64; 4]; 4];
type Vec4 = [f64; 4];

fn mat_mul(a: &Mat4, b: &Mat4) -> Mat4 {
    let mut out = [[0.0; 4]; 4];
    for (i, row) in a.iter().enumerate() {
        for j in 0..4 {
            out[i][j] = (0..4).map(|k| row[k] * b[k][j]).sum();
        }
    }
    out
}

fn mat_vec(a: &Mat4, v: &Vec4) -> Vec4 {
    let mut out = [0.0; 4];
    for (i, row) in a.iter().enumerate() {
        out[i] = (0..4).map(|k| row[k] * v[k]).sum();
    }
    out
}

fn transpose(a: &Mat4) -> Mat4 {
    let mut out = [[0.0; 4]; 4];
    for (i, row) in a.iter().enumerate() {
        for (j, x) in row.iter().enumerate() {
            out[j][i] = *x;
        }
    }
    out
}

fn mat_add(a: &Mat4, b: &Mat4) -> Mat4 {
    let mut out = [[0.0; 4]; 4];
    for i in 0..4 {
        for j in 0..4 {
            out[i][j] = a[i][j] + b[i][j];
        }
    }
    out
}

fn identity() -> Mat4 {
    let mut m = [[0.0; 4]; 4];
    for (i, row) in m.iter_mut().enumerate() {
        row[i] = 1.0;
    }
    m
}

/// A constant-velocity Kalman position tracker.
///
/// # Examples
///
/// ```
/// use mobigrid_forecast::{KalmanCv, PositionEstimator};
/// use mobigrid_geo::Point;
///
/// let mut kf = KalmanCv::new(0.5, 0.5).unwrap();
/// for t in 0..20 {
///     kf.observe(t as f64, Point::new(2.0 * t as f64, 0.0));
/// }
/// let p = kf.estimate(21.0).unwrap();
/// assert!((p.x - 42.0).abs() < 1.0);
/// ```
#[derive(Debug, Clone, PartialEq)]
pub struct KalmanCv {
    /// White-acceleration process noise σₐ (m/s²).
    accel_sigma: f64,
    /// Measurement noise σ (m).
    measurement_sigma: f64,
    /// State estimate, when initialised.
    state: Option<(f64, Vec4)>,
    /// Covariance.
    p: Mat4,
}

impl KalmanCv {
    /// Creates a tracker with process noise `accel_sigma` (m/s²) and
    /// measurement noise `measurement_sigma` (m).
    ///
    /// # Errors
    ///
    /// Returns [`ForecastError::InvalidSmoothingFactor`] when either sigma
    /// is non-positive or non-finite.
    pub fn new(accel_sigma: f64, measurement_sigma: f64) -> Result<Self, ForecastError> {
        for v in [accel_sigma, measurement_sigma] {
            if !v.is_finite() || v <= 0.0 {
                return Err(ForecastError::InvalidSmoothingFactor { value: v });
            }
        }
        Ok(KalmanCv {
            accel_sigma,
            measurement_sigma,
            state: None,
            p: identity(),
        })
    }

    fn transition(dt: f64) -> Mat4 {
        let mut f = identity();
        f[0][2] = dt;
        f[1][3] = dt;
        f
    }

    fn process_noise(&self, dt: f64) -> Mat4 {
        let q = self.accel_sigma * self.accel_sigma;
        let dt2 = dt * dt;
        let dt3 = dt2 * dt;
        let dt4 = dt3 * dt;
        let (a, b, c) = (dt4 / 4.0 * q, dt3 / 2.0 * q, dt2 * q);
        [
            [a, 0.0, b, 0.0],
            [0.0, a, 0.0, b],
            [b, 0.0, c, 0.0],
            [0.0, b, 0.0, c],
        ]
    }

    fn predict_state(&self, dt: f64) -> Option<Vec4> {
        let (_, x) = self.state?;
        Some(mat_vec(&Self::transition(dt), &x))
    }

    /// The current velocity estimate, when initialised.
    #[must_use]
    pub fn velocity(&self) -> Option<Vec2> {
        self.state.map(|(_, x)| Vec2::new(x[2], x[3]))
    }
}

impl PositionEstimator for KalmanCv {
    fn observe(&mut self, time_s: f64, position: Point) {
        match self.state {
            None => {
                self.state = Some((time_s, [position.x, position.y, 0.0, 0.0]));
                // Large initial velocity uncertainty; position pinned to the
                // first measurement.
                let r = self.measurement_sigma * self.measurement_sigma;
                self.p = [
                    [r, 0.0, 0.0, 0.0],
                    [0.0, r, 0.0, 0.0],
                    [0.0, 0.0, 100.0, 0.0],
                    [0.0, 0.0, 0.0, 100.0],
                ];
            }
            Some((t0, x)) => {
                let dt = time_s - t0;
                if dt <= 0.0 {
                    return;
                }
                // Predict.
                let f = Self::transition(dt);
                let x_pred = mat_vec(&f, &x);
                let p_pred = mat_add(
                    &mat_mul(&mat_mul(&f, &self.p), &transpose(&f)),
                    &self.process_noise(dt),
                );

                // Update with the position measurement (H = [I₂ 0]).
                let r = self.measurement_sigma * self.measurement_sigma;
                let s00 = p_pred[0][0] + r;
                let s11 = p_pred[1][1] + r;
                let s01 = p_pred[0][1];
                let det = s00 * s11 - s01 * s01;
                if det.abs() < 1e-12 {
                    // Degenerate innovation covariance: keep the prediction.
                    self.state = Some((time_s, x_pred));
                    self.p = p_pred;
                    return;
                }
                let (i00, i01, i11) = (s11 / det, -s01 / det, s00 / det);
                // Kalman gain K = P Hᵀ S⁻¹ (4×2).
                let mut k = [[0.0; 2]; 4];
                for (i, row) in p_pred.iter().enumerate() {
                    k[i][0] = row[0] * i00 + row[1] * i01;
                    k[i][1] = row[0] * i01 + row[1] * i11;
                }
                let innov = [position.x - x_pred[0], position.y - x_pred[1]];
                let mut x_new = x_pred;
                for (i, gain_row) in k.iter().enumerate() {
                    x_new[i] += gain_row[0] * innov[0] + gain_row[1] * innov[1];
                }
                // P = (I − K H) P.
                let mut ikh = identity();
                for (i, gain_row) in k.iter().enumerate() {
                    ikh[i][0] -= gain_row[0];
                    ikh[i][1] -= gain_row[1];
                }
                self.p = mat_mul(&ikh, &p_pred);
                self.state = Some((time_s, x_new));
            }
        }
    }

    fn estimate(&self, time_s: f64) -> Option<Point> {
        let (t0, _) = self.state?;
        let dt = (time_s - t0).max(0.0);
        let x = self.predict_state(dt)?;
        Some(Point::new(x[0], x[1]))
    }

    fn reset(&mut self) {
        self.state = None;
        self.p = identity();
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn rejects_bad_sigmas() {
        assert!(KalmanCv::new(0.0, 1.0).is_err());
        assert!(KalmanCv::new(1.0, f64::NAN).is_err());
        assert!(KalmanCv::new(0.5, 0.5).is_ok());
    }

    #[test]
    fn converges_on_constant_velocity() {
        let mut kf = KalmanCv::new(0.3, 0.5).unwrap();
        for t in 0..50 {
            kf.observe(
                f64::from(t),
                Point::new(1.5 * f64::from(t), -0.5 * f64::from(t)),
            );
        }
        let v = kf.velocity().unwrap();
        assert!((v.dx - 1.5).abs() < 0.05, "vx = {}", v.dx);
        assert!((v.dy + 0.5).abs() < 0.05, "vy = {}", v.dy);
        let p = kf.estimate(52.0).unwrap();
        assert!((p.x - 78.0).abs() < 0.5);
    }

    #[test]
    fn single_observation_holds_position() {
        let mut kf = KalmanCv::new(0.5, 0.5).unwrap();
        kf.observe(0.0, Point::new(3.0, 4.0));
        // Velocity prior is zero, so prediction stays put.
        assert_eq!(kf.estimate(10.0), Some(Point::new(3.0, 4.0)));
    }

    #[test]
    fn filters_measurement_noise() {
        // Noisy measurements of a fixed point: the estimate's error should
        // be well under the noise amplitude after convergence.
        let mut kf = KalmanCv::new(0.05, 1.0).unwrap();
        let truth = Point::new(10.0, 10.0);
        for t in 0..100 {
            let jitter = if t % 2 == 0 { 0.8 } else { -0.8 };
            kf.observe(f64::from(t), Point::new(truth.x + jitter, truth.y - jitter));
        }
        let p = kf.estimate(100.0).unwrap();
        assert!(p.distance_to(truth) < 0.4, "err = {}", p.distance_to(truth));
    }

    #[test]
    fn non_advancing_time_is_ignored() {
        let mut kf = KalmanCv::new(0.5, 0.5).unwrap();
        kf.observe(1.0, Point::new(0.0, 0.0));
        kf.observe(1.0, Point::new(100.0, 100.0)); // dt = 0: ignored
        assert_eq!(kf.estimate(1.0), Some(Point::new(0.0, 0.0)));
    }

    #[test]
    fn reset_clears_state() {
        let mut kf = KalmanCv::new(0.5, 0.5).unwrap();
        kf.observe(0.0, Point::new(1.0, 1.0));
        kf.reset();
        assert_eq!(kf.estimate(1.0), None);
    }

    #[test]
    fn extrapolates_unboundedly_unlike_the_gated_estimator() {
        // Documents *why* the ablation shows Kalman losing on filtered
        // streams: it happily walks for ever at the last velocity.
        let mut kf = KalmanCv::new(0.3, 0.5).unwrap();
        for t in 0..20 {
            kf.observe(f64::from(t), Point::new(4.0 * f64::from(t), 0.0));
        }
        let far = kf.estimate(19.0 + 100.0).unwrap();
        assert!(far.x > 4.0 * 19.0 + 350.0, "x = {}", far.x);
    }
}
