//! Time-series estimation substrate for the mobigrid workspace.
//!
//! When the adaptive distance filter suppresses a location update, the grid
//! broker no longer knows where a mobile node is; the paper closes that gap
//! with **Brown's double exponential smoothing** over the node's velocity and
//! direction (§3.3). This crate implements that estimator along with the
//! alternatives the paper discusses (ARIMA-style autoregression, simple
//! exponential smoothing) and the machinery to compare them:
//!
//! * scalar forecasters: [`SingleExponential`], [`BrownDouble`],
//!   [`HoltLinear`], [`AutoRegressive`],
//! * position trackers built on them: [`BrownPositionEstimator`],
//!   [`DeadReckoning`], [`LastKnown`], [`AxisSmoothing`],
//! * error metrics: [`metrics::rmse`], [`metrics::mae`], [`metrics::mape`].
//!
//! # Examples
//!
//! Forecasting a linear signal with Brown's method converges to zero error:
//!
//! ```
//! use mobigrid_forecast::{BrownDouble, Forecaster};
//!
//! let mut brown = BrownDouble::new(0.5).unwrap();
//! for t in 0..50 {
//!     brown.observe(2.0 * t as f64 + 1.0);
//! }
//! let pred = brown.forecast(1.0).unwrap();
//! assert!((pred - (2.0 * 50.0 + 1.0)).abs() < 0.1);
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

mod ar;
mod brown;
mod error;
mod holt;
mod kalman;
mod lin;
pub mod metrics;
mod ses;
mod tracker;

pub use ar::AutoRegressive;
pub use brown::BrownDouble;
pub use error::ForecastError;
pub use holt::HoltLinear;
pub use kalman::KalmanCv;
pub use lin::solve_linear_system;
pub use ses::SingleExponential;
pub use tracker::{
    AxisSmoothing, BrownPositionEstimator, DeadReckoning, LastKnown, PositionEstimator,
};

/// A scalar one-dimensional forecaster.
///
/// Implementations consume a stream of equally-spaced observations via
/// [`Forecaster::observe`] and extrapolate `horizon` steps ahead via
/// [`Forecaster::forecast`]. A horizon of `0.0` is the smoothed estimate of
/// the current level.
pub trait Forecaster {
    /// Feeds the next observation of the series.
    fn observe(&mut self, value: f64);

    /// Predicts the series `horizon` steps past the last observation, or
    /// `None` when too few observations have been seen.
    fn forecast(&self, horizon: f64) -> Option<f64>;

    /// Forgets all state, returning to the freshly-constructed condition.
    fn reset(&mut self);

    /// Number of observations consumed since construction or reset.
    fn observations(&self) -> u64;
}
