use std::collections::VecDeque;

use crate::{lin::solve_linear_system, ForecastError, Forecaster};

/// A sliding-window autoregressive model `AR(p)` fit by least squares.
///
/// `xₜ = c + φ₁xₜ₋₁ + … + φₚxₜ₋ₚ`, refit over the most recent `window`
/// observations each time a forecast is requested. This is the "ARIMA-style"
/// comparator the paper mentions and rejects: it *can* be more precise, but
/// it "needs a massive dataset to estimate and it is hard to update
/// parameters" (§3.3) — which is exactly what the sliding-window refits model.
///
/// # Examples
///
/// ```
/// use mobigrid_forecast::{AutoRegressive, Forecaster};
///
/// let mut ar = AutoRegressive::new(2, 64).unwrap();
/// for t in 0..64 {
///     ar.observe((0.3_f64 * t as f64).sin()); // sinusoid: an exact AR(2) process
/// }
/// let pred = ar.forecast(1.0).unwrap();
/// assert!((pred - (0.3f64 * 64.0).sin()).abs() < 1e-6);
/// ```
#[derive(Debug, Clone, PartialEq)]
pub struct AutoRegressive {
    order: usize,
    window: usize,
    history: VecDeque<f64>,
    count: u64,
}

impl AutoRegressive {
    /// Creates an `AR(order)` model fit over a sliding `window` of
    /// observations.
    ///
    /// # Errors
    ///
    /// Returns [`ForecastError::InvalidOrder`] when `order` is zero or the
    /// window is too small to fit `order + 1` coefficients
    /// (`window < 2·order + 2`).
    pub fn new(order: usize, window: usize) -> Result<Self, ForecastError> {
        if order == 0 || window < 2 * order + 2 {
            return Err(ForecastError::InvalidOrder { order });
        }
        Ok(AutoRegressive {
            order,
            window,
            history: VecDeque::with_capacity(window),
            count: 0,
        })
    }

    /// The autoregressive order `p`.
    #[must_use]
    pub fn order(&self) -> usize {
        self.order
    }

    /// The sliding-window length.
    #[must_use]
    pub fn window(&self) -> usize {
        self.window
    }

    /// Fits coefficients `[c, φ₁, …, φₚ]` over the current window.
    ///
    /// # Errors
    ///
    /// Returns [`ForecastError::NotEnoughData`] before `order + 2`
    /// observations and [`ForecastError::SingularSystem`] for degenerate
    /// windows (e.g. a constant series makes the design matrix rank
    /// deficient; callers should fall back to a simpler estimator).
    pub fn fit(&self) -> Result<Vec<f64>, ForecastError> {
        let p = self.order;
        let n = self.history.len();
        if n < p + 2 {
            return Err(ForecastError::NotEnoughData {
                needed: p + 2,
                got: n,
            });
        }
        let xs: Vec<f64> = self.history.iter().copied().collect();
        let rows = n - p;
        let cols = p + 1; // intercept + p lags

        // Normal equations: (XᵀX)·β = Xᵀy with X = [1, lag1..lagp].
        let mut xtx = vec![vec![0.0; cols]; cols];
        let mut xty = vec![0.0; cols];
        for t in p..n {
            let y = xs[t];
            let mut row = Vec::with_capacity(cols);
            row.push(1.0);
            for lag in 1..=p {
                row.push(xs[t - lag]);
            }
            for i in 0..cols {
                xty[i] += row[i] * y;
                for j in 0..cols {
                    xtx[i][j] += row[i] * row[j];
                }
            }
        }
        let _ = rows;
        solve_linear_system(&xtx, &xty)
    }

    fn predict_next(&self, coef: &[f64], recent: &[f64]) -> f64 {
        let mut y = coef[0];
        for (lag, phi) in coef[1..].iter().enumerate() {
            y += phi * recent[recent.len() - 1 - lag];
        }
        y
    }
}

impl Forecaster for AutoRegressive {
    fn observe(&mut self, value: f64) {
        self.count += 1;
        if self.history.len() == self.window {
            self.history.pop_front();
        }
        self.history.push_back(value);
    }

    fn forecast(&self, horizon: f64) -> Option<f64> {
        let coef = self.fit().ok()?;
        let mut recent: Vec<f64> = self.history.iter().copied().collect();
        // Iterate single-step predictions out to ceil(horizon) steps, then
        // linearly interpolate the fractional remainder.
        let steps = horizon.max(0.0).ceil() as usize;
        if steps == 0 {
            return recent.last().copied();
        }
        let mut prev = *recent.last()?;
        let mut next = prev;
        for _ in 0..steps {
            prev = next;
            next = self.predict_next(&coef, &recent);
            recent.push(next);
        }
        let frac = horizon - (steps as f64 - 1.0);
        Some(prev + (next - prev) * frac.clamp(0.0, 1.0))
    }

    fn reset(&mut self) {
        self.history.clear();
        self.count = 0;
    }

    fn observations(&self) -> u64 {
        self.count
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn rejects_zero_order_and_tiny_windows() {
        assert!(AutoRegressive::new(0, 10).is_err());
        assert!(AutoRegressive::new(3, 7).is_err()); // needs >= 8
        assert!(AutoRegressive::new(3, 8).is_ok());
    }

    #[test]
    fn not_enough_data_before_warmup() {
        let mut ar = AutoRegressive::new(2, 16).unwrap();
        ar.observe(1.0);
        ar.observe(2.0);
        assert!(matches!(ar.fit(), Err(ForecastError::NotEnoughData { .. })));
        assert_eq!(ar.forecast(1.0), None);
    }

    #[test]
    fn recovers_sinusoid_exactly() {
        // sin(ωt) satisfies the AR(2) relation xt = 2cos(ω)·x(t−1) − x(t−2)
        // with linearly independent lag columns, so least squares recovers
        // it to machine precision. (A perfectly *linear* series is a
        // degenerate fit — its lag columns are affinely dependent — which is
        // covered by `constant_series_is_singular_but_safe` below.)
        let mut ar = AutoRegressive::new(2, 32).unwrap();
        for t in 0..32 {
            ar.observe((0.3_f64 * t as f64).sin());
        }
        let pred = ar.forecast(1.0).unwrap();
        let truth = (0.3_f64 * 32.0).sin();
        assert!((pred - truth).abs() < 1e-6, "pred={pred} truth={truth}");
    }

    #[test]
    fn multi_step_forecast_extends_sinusoid() {
        let mut ar = AutoRegressive::new(2, 32).unwrap();
        for t in 0..32 {
            ar.observe((0.3_f64 * t as f64).sin());
        }
        let pred = ar.forecast(5.0).unwrap();
        let truth = (0.3_f64 * 36.0).sin();
        assert!((pred - truth).abs() < 1e-5, "pred={pred} truth={truth}");
    }

    #[test]
    fn constant_series_is_singular_but_safe() {
        let mut ar = AutoRegressive::new(2, 16).unwrap();
        for _ in 0..16 {
            ar.observe(5.0);
        }
        // The design matrix is rank-deficient; fit reports it rather than
        // returning garbage, and forecast degrades to None.
        assert_eq!(ar.fit(), Err(ForecastError::SingularSystem));
        assert_eq!(ar.forecast(1.0), None);
    }

    #[test]
    fn window_slides() {
        let mut ar = AutoRegressive::new(1, 8).unwrap();
        for t in 0..100 {
            ar.observe(t as f64);
        }
        assert_eq!(ar.observations(), 100);
        // Only the window is retained.
        assert_eq!(ar.history.len(), 8);
    }

    #[test]
    fn reset_clears_history() {
        let mut ar = AutoRegressive::new(1, 8).unwrap();
        for t in 0..8 {
            ar.observe(t as f64);
        }
        ar.reset();
        assert_eq!(ar.observations(), 0);
        assert_eq!(ar.forecast(1.0), None);
    }
}
