use crate::{ForecastError, Forecaster};

/// Holt's linear-trend method (double exponential smoothing with separate
/// level and trend factors).
///
/// Where [`BrownDouble`](crate::BrownDouble) ties both smoothings to one
/// factor α, Holt's method smooths the level with α and the trend with an
/// independent β:
///
/// ```text
/// ℓₜ = α·xₜ + (1 − α)(ℓₜ₋₁ + bₜ₋₁)
/// bₜ = β(ℓₜ − ℓₜ₋₁) + (1 − β)bₜ₋₁
/// x̂ₜ₊ₕ = ℓₜ + h·bₜ
/// ```
///
/// Included as an ablation alternative to the paper's estimator: with a
/// sluggish trend factor it is more robust to the jittery velocities of
/// random-movement nodes, at the cost of slower lock-on for road nodes.
///
/// # Examples
///
/// ```
/// use mobigrid_forecast::{Forecaster, HoltLinear};
///
/// let mut holt = HoltLinear::new(0.8, 0.2).unwrap();
/// for t in 0..100 {
///     holt.observe(t as f64);
/// }
/// assert!((holt.forecast(1.0).unwrap() - 100.0).abs() < 0.5);
/// ```
#[derive(Debug, Clone, PartialEq)]
pub struct HoltLinear {
    alpha: f64,
    beta: f64,
    level: Option<f64>,
    trend: f64,
    count: u64,
}

impl HoltLinear {
    /// Creates a smoother with level factor `alpha ∈ (0, 1]` and trend
    /// factor `beta ∈ (0, 1]`.
    ///
    /// # Errors
    ///
    /// Returns [`ForecastError::InvalidSmoothingFactor`] when either factor
    /// is outside `(0, 1]` or non-finite.
    pub fn new(alpha: f64, beta: f64) -> Result<Self, ForecastError> {
        for v in [alpha, beta] {
            if !v.is_finite() || v <= 0.0 || v > 1.0 {
                return Err(ForecastError::InvalidSmoothingFactor { value: v });
            }
        }
        Ok(HoltLinear {
            alpha,
            beta,
            level: None,
            trend: 0.0,
            count: 0,
        })
    }

    /// The level smoothing factor.
    #[must_use]
    pub fn alpha(&self) -> f64 {
        self.alpha
    }

    /// The trend smoothing factor.
    #[must_use]
    pub fn beta(&self) -> f64 {
        self.beta
    }

    /// The current level estimate.
    #[must_use]
    pub fn level(&self) -> Option<f64> {
        self.level
    }

    /// The current per-step trend estimate (zero before two observations).
    #[must_use]
    pub fn trend(&self) -> f64 {
        self.trend
    }
}

impl Forecaster for HoltLinear {
    fn observe(&mut self, value: f64) {
        self.count += 1;
        match self.level {
            None => {
                self.level = Some(value);
                self.trend = 0.0;
            }
            Some(prev_level) => {
                let level = self.alpha * value + (1.0 - self.alpha) * (prev_level + self.trend);
                self.trend = self.beta * (level - prev_level) + (1.0 - self.beta) * self.trend;
                self.level = Some(level);
            }
        }
    }

    fn forecast(&self, horizon: f64) -> Option<f64> {
        Some(self.level? + horizon * self.trend)
    }

    fn reset(&mut self) {
        self.level = None;
        self.trend = 0.0;
        self.count = 0;
    }

    fn observations(&self) -> u64 {
        self.count
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn rejects_bad_factors() {
        assert!(HoltLinear::new(0.0, 0.5).is_err());
        assert!(HoltLinear::new(0.5, 1.1).is_err());
        assert!(HoltLinear::new(f64::INFINITY, 0.5).is_err());
        assert!(HoltLinear::new(1.0, 1.0).is_ok());
    }

    #[test]
    fn recurrence_matches_hand_computation() {
        // alpha=0.5, beta=0.5; x=[10, 20]
        // t1: level=10, trend=0
        // t2: level=0.5*20+0.5*(10+0)=15 ; trend=0.5*(15-10)+0.5*0=2.5
        let mut h = HoltLinear::new(0.5, 0.5).unwrap();
        h.observe(10.0);
        h.observe(20.0);
        assert!((h.level().unwrap() - 15.0).abs() < 1e-12);
        assert!((h.trend() - 2.5).abs() < 1e-12);
        assert!((h.forecast(2.0).unwrap() - 20.0).abs() < 1e-12);
    }

    #[test]
    fn locks_onto_linear_trend() {
        let mut h = HoltLinear::new(0.6, 0.3).unwrap();
        for t in 0..500 {
            h.observe(-4.0 + 0.7 * t as f64);
        }
        assert!((h.trend() - 0.7).abs() < 1e-6);
    }

    #[test]
    fn constant_signal_zero_trend() {
        let mut h = HoltLinear::new(0.5, 0.5).unwrap();
        for _ in 0..100 {
            h.observe(3.0);
        }
        assert!(h.trend().abs() < 1e-9);
        assert!((h.forecast(50.0).unwrap() - 3.0).abs() < 1e-9);
    }

    #[test]
    fn empty_and_reset_behaviour() {
        let mut h = HoltLinear::new(0.5, 0.5).unwrap();
        assert_eq!(h.forecast(1.0), None);
        h.observe(1.0);
        assert!(h.forecast(1.0).is_some());
        h.reset();
        assert_eq!(h.forecast(1.0), None);
        assert_eq!(h.observations(), 0);
    }
}
