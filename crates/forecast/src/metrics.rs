//! Error metrics for comparing estimated against true series.
//!
//! The paper quantifies location error with the root-mean-square error
//! `RMSE = sqrt(Σ(RLᵢ − ELᵢ)²/n)` over real locations `RL` and estimated
//! locations `EL` (§4.2, citing Ghilani & Wolf). These helpers implement that
//! and the companion metrics used in the ablation benches.

/// Root-mean-square error between paired samples.
///
/// # Panics
///
/// Panics when the slices differ in length.
///
/// # Examples
///
/// ```
/// let e = mobigrid_forecast::metrics::rmse(&[1.0, 2.0], &[1.0, 4.0]);
/// assert!((e - (2.0f64).sqrt() / (2.0f64).sqrt() * (2.0f64)/(2.0f64).sqrt()).abs() < 1.0);
/// assert!((e - (4.0f64 / 2.0).sqrt()).abs() < 1e-12);
/// ```
#[must_use]
pub fn rmse(actual: &[f64], estimated: &[f64]) -> f64 {
    assert_eq!(actual.len(), estimated.len(), "series must pair up");
    if actual.is_empty() {
        return 0.0;
    }
    let sum_sq: f64 = actual
        .iter()
        .zip(estimated)
        .map(|(a, e)| (a - e).powi(2))
        .sum();
    (sum_sq / actual.len() as f64).sqrt()
}

/// Mean absolute error between paired samples.
///
/// # Panics
///
/// Panics when the slices differ in length.
#[must_use]
pub fn mae(actual: &[f64], estimated: &[f64]) -> f64 {
    assert_eq!(actual.len(), estimated.len(), "series must pair up");
    if actual.is_empty() {
        return 0.0;
    }
    actual
        .iter()
        .zip(estimated)
        .map(|(a, e)| (a - e).abs())
        .sum::<f64>()
        / actual.len() as f64
}

/// Mean absolute percentage error between paired samples, in percent.
///
/// Samples where the actual value is zero are skipped (the percentage is
/// undefined there); returns zero when every sample is skipped.
///
/// # Panics
///
/// Panics when the slices differ in length.
#[must_use]
pub fn mape(actual: &[f64], estimated: &[f64]) -> f64 {
    assert_eq!(actual.len(), estimated.len(), "series must pair up");
    let mut sum = 0.0;
    let mut n = 0u32;
    for (a, e) in actual.iter().zip(estimated) {
        if *a != 0.0 {
            sum += ((a - e) / a).abs();
            n += 1;
        }
    }
    if n == 0 {
        0.0
    } else {
        100.0 * sum / f64::from(n)
    }
}

/// Maximum absolute error between paired samples.
///
/// # Panics
///
/// Panics when the slices differ in length.
#[must_use]
pub fn max_abs_error(actual: &[f64], estimated: &[f64]) -> f64 {
    assert_eq!(actual.len(), estimated.len(), "series must pair up");
    actual
        .iter()
        .zip(estimated)
        .map(|(a, e)| (a - e).abs())
        .fold(0.0, f64::max)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn rmse_of_identical_series_is_zero() {
        assert_eq!(rmse(&[1.0, 2.0, 3.0], &[1.0, 2.0, 3.0]), 0.0);
    }

    #[test]
    fn rmse_hand_computed() {
        // errors: 3, 4 -> rmse = sqrt((9+16)/2)
        let e = rmse(&[0.0, 0.0], &[3.0, 4.0]);
        assert!((e - (12.5f64).sqrt()).abs() < 1e-12);
    }

    #[test]
    fn rmse_of_empty_is_zero() {
        assert_eq!(rmse(&[], &[]), 0.0);
    }

    #[test]
    fn mae_hand_computed() {
        assert_eq!(mae(&[0.0, 0.0], &[3.0, -5.0]), 4.0);
    }

    #[test]
    fn mape_skips_zero_actuals() {
        // Only the second sample counts: |(10-5)/10| = 50 %
        let m = mape(&[0.0, 10.0], &[99.0, 5.0]);
        assert!((m - 50.0).abs() < 1e-12);
    }

    #[test]
    fn mape_all_zero_actuals_is_zero() {
        assert_eq!(mape(&[0.0, 0.0], &[1.0, 2.0]), 0.0);
    }

    #[test]
    fn max_abs_error_hand_computed() {
        assert_eq!(max_abs_error(&[1.0, 5.0], &[2.0, 1.0]), 4.0);
    }

    #[test]
    #[should_panic(expected = "pair up")]
    fn mismatched_lengths_panic() {
        let _ = rmse(&[1.0], &[1.0, 2.0]);
    }

    #[test]
    fn rmse_dominates_mae() {
        // RMSE >= MAE for any series (power-mean inequality).
        let a = [1.0, 2.0, 3.0, 4.0];
        let b = [1.5, 1.0, 4.0, 2.0];
        assert!(rmse(&a, &b) >= mae(&a, &b));
    }
}
