use std::error::Error;
use std::fmt;

/// Errors from assembling or querying a campus.
#[derive(Debug, Clone, PartialEq, Eq)]
#[non_exhaustive]
pub enum CampusError {
    /// A region name was registered twice.
    DuplicateRegion {
        /// The offending name.
        name: String,
    },
    /// A named waypoint was registered twice.
    DuplicateWaypoint {
        /// The offending name.
        name: String,
    },
    /// An entrance referenced a region that does not exist.
    UnknownRegion {
        /// The missing region name.
        name: String,
    },
    /// A graph edge referenced a node that does not exist.
    UnknownNode,
    /// A corridor region was given a non-positive width.
    InvalidCorridorWidth,
}

impl fmt::Display for CampusError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            CampusError::DuplicateRegion { name } => {
                write!(f, "region name registered twice: {name}")
            }
            CampusError::DuplicateWaypoint { name } => {
                write!(f, "waypoint name registered twice: {name}")
            }
            CampusError::UnknownRegion { name } => write!(f, "unknown region: {name}"),
            CampusError::UnknownNode => write!(f, "graph edge references unknown node"),
            CampusError::InvalidCorridorWidth => {
                write!(f, "corridor width must be positive")
            }
        }
    }
}

impl Error for CampusError {}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn display_includes_names() {
        let e = CampusError::UnknownRegion {
            name: "B9".to_string(),
        };
        assert!(e.to_string().contains("B9"));
    }
}
