//! Campus experiment-site model for the mobigrid workspace.
//!
//! The paper evaluates the adaptive distance filter on a real university
//! campus (Figure 1): five roads `R1–R5`, six buildings `B1–B6` and two
//! gates, eleven regions in total that provide mobile-grid access. This crate
//! models that site:
//!
//! * [`Region`] — a named region (building or road) with containment and
//!   sampling queries,
//! * [`Campus`] — the full site: region set, waypoint graph and routing,
//! * [`WaypointGraph`] — gates, junctions and entrances joined by walkable
//!   edges, with Dijkstra shortest paths,
//! * [`Campus::inha_like`] — the default layout mirroring the paper's
//!   topology, on which Tom's §3.1 daily scenario is routable.
//!
//! # Examples
//!
//! ```
//! use mobigrid_campus::{Campus, RegionKind};
//!
//! let campus = Campus::inha_like();
//! assert_eq!(campus.regions().len(), 11); // 6 buildings + 5 roads
//!
//! // Route from gate B to the library (B4), as Tom does each morning.
//! let gate_b = campus.waypoint("gate_b").unwrap();
//! let library = campus.entrance("B4").unwrap();
//! let path = campus.route(gate_b, library).expect("library is reachable");
//! assert!(path.length() > 0.0);
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

mod campus;
mod error;
mod graph;
mod grid_city;
mod inha;
mod region;

pub use campus::{Campus, CampusBuilder};
pub use error::CampusError;
pub use graph::{NodeId, WaypointGraph};
pub use grid_city::{BLOCK_SIZE, BUILDING_INSET};
pub use inha::{BUILDING_NAMES, ROAD_NAMES, ROAD_WIDTH};
pub use region::{Region, RegionId, RegionKind, RegionShape};
