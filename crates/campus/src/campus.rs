use std::collections::BTreeMap;

use mobigrid_geo::{Point, Polyline, Rect};

use crate::{CampusError, NodeId, Region, RegionId, RegionKind, WaypointGraph};

/// A complete campus: the region set, the walkable waypoint graph, named
/// waypoints (gates, junctions) and region entrances.
///
/// Construct one with [`CampusBuilder`] or use the paper-shaped default
/// [`Campus::inha_like`].
#[derive(Debug, Clone, PartialEq)]
pub struct Campus {
    regions: Vec<Region>,
    graph: WaypointGraph,
    named_waypoints: BTreeMap<String, NodeId>,
    entrances: BTreeMap<String, NodeId>,
}

impl Campus {
    /// Starts building a campus.
    #[must_use]
    pub fn builder() -> CampusBuilder {
        CampusBuilder::new()
    }

    /// All regions, indexed by [`RegionId::index`].
    #[must_use]
    pub fn regions(&self) -> &[Region] {
        &self.regions
    }

    /// Looks up a region by id.
    ///
    /// # Panics
    ///
    /// Panics when `id` does not belong to this campus.
    #[must_use]
    pub fn region(&self, id: RegionId) -> &Region {
        &self.regions[id.index()]
    }

    /// Looks up a region by name.
    #[must_use]
    pub fn region_by_name(&self, name: &str) -> Option<&Region> {
        self.regions.iter().find(|r| r.name() == name)
    }

    /// The region containing `p`, if any; buildings take precedence over
    /// roads when footprints overlap (e.g. at an entrance).
    #[must_use]
    pub fn locate(&self, p: Point) -> Option<&Region> {
        self.regions
            .iter()
            .filter(|r| r.contains(p))
            .max_by_key(|r| match r.kind() {
                RegionKind::Building => 1,
                RegionKind::Road => 0,
            })
    }

    /// The walkable waypoint graph.
    #[must_use]
    pub fn graph(&self) -> &WaypointGraph {
        &self.graph
    }

    /// Looks up a named waypoint (e.g. `"gate_a"`).
    #[must_use]
    pub fn waypoint(&self, name: &str) -> Option<NodeId> {
        self.named_waypoints.get(name).copied()
    }

    /// The entrance waypoint of the named region, if registered.
    #[must_use]
    pub fn entrance(&self, region_name: &str) -> Option<NodeId> {
        self.entrances.get(region_name).copied()
    }

    /// Shortest walkable route between two waypoints.
    #[must_use]
    pub fn route(&self, from: NodeId, to: NodeId) -> Option<Polyline> {
        self.graph.shortest_path(from, to)
    }

    /// Bounding box of every region footprint.
    ///
    /// # Panics
    ///
    /// Panics on a campus with no regions.
    #[must_use]
    pub fn bounding_box(&self) -> Rect {
        let mut boxes = self.regions.iter().map(|r| r.shape().bounding_box());
        let first = boxes.next().expect("campus has regions");
        boxes.fold(first, |acc, b| {
            Rect::bounding([acc.min(), acc.max(), b.min(), b.max()]).expect("non-empty")
        })
    }

    /// Regions of the given kind, in id order.
    pub fn regions_of_kind(&self, kind: RegionKind) -> impl Iterator<Item = &Region> {
        self.regions.iter().filter(move |r| r.kind() == kind)
    }
}

/// Incremental [`Campus`] constructor.
///
/// # Examples
///
/// ```
/// # fn main() -> Result<(), Box<dyn std::error::Error>> {
/// use mobigrid_campus::{Campus, RegionKind};
/// use mobigrid_geo::{Point, Polyline, Rect};
///
/// let mut b = Campus::builder();
/// let hall = b.add_building("Hall", Rect::new(Point::new(0.0, 10.0), Point::new(40.0, 40.0))?)?;
/// let road = b.add_road(
///     "Main",
///     Polyline::new(vec![Point::new(-50.0, 0.0), Point::new(50.0, 0.0)])?,
///     8.0,
/// )?;
/// let gate = b.add_waypoint("gate", Point::new(-50.0, 0.0))?;
/// let door = b.add_entrance("Hall", Point::new(20.0, 10.0))?;
/// b.connect(gate, door)?;
/// let campus = b.build();
/// assert_eq!(campus.regions().len(), 2);
/// assert_eq!(campus.region(hall).kind(), RegionKind::Building);
/// assert_eq!(campus.region(road).kind(), RegionKind::Road);
/// assert!(campus.route(gate, door).is_some());
/// # Ok(())
/// # }
/// ```
#[derive(Debug, Clone, Default)]
pub struct CampusBuilder {
    regions: Vec<Region>,
    graph: WaypointGraph,
    named_waypoints: BTreeMap<String, NodeId>,
    entrances: BTreeMap<String, NodeId>,
}

impl CampusBuilder {
    /// Creates an empty builder.
    #[must_use]
    pub fn new() -> Self {
        CampusBuilder::default()
    }

    fn check_region_name(&self, name: &str) -> Result<(), CampusError> {
        if self.regions.iter().any(|r| r.name() == name) {
            return Err(CampusError::DuplicateRegion {
                name: name.to_string(),
            });
        }
        Ok(())
    }

    /// Registers a building with a rectangular footprint.
    ///
    /// # Errors
    ///
    /// Returns [`CampusError::DuplicateRegion`] when the name is taken.
    pub fn add_building(
        &mut self,
        name: impl Into<String>,
        footprint: Rect,
    ) -> Result<RegionId, CampusError> {
        let name = name.into();
        self.check_region_name(&name)?;
        let id = RegionId::from_index(self.regions.len() as u32);
        self.regions.push(Region::building(id, name, footprint));
        Ok(id)
    }

    /// Registers a road corridor.
    ///
    /// # Errors
    ///
    /// Returns [`CampusError::DuplicateRegion`] when the name is taken and
    /// [`CampusError::InvalidCorridorWidth`] for non-positive widths.
    pub fn add_road(
        &mut self,
        name: impl Into<String>,
        spine: Polyline,
        width: f64,
    ) -> Result<RegionId, CampusError> {
        let name = name.into();
        self.check_region_name(&name)?;
        let id = RegionId::from_index(self.regions.len() as u32);
        self.regions.push(Region::road(id, name, spine, width)?);
        Ok(id)
    }

    /// Registers a named waypoint (gate, junction).
    ///
    /// # Errors
    ///
    /// Returns [`CampusError::DuplicateWaypoint`] when the name is taken.
    pub fn add_waypoint(
        &mut self,
        name: impl Into<String>,
        at: Point,
    ) -> Result<NodeId, CampusError> {
        let name = name.into();
        if self.named_waypoints.contains_key(&name) {
            return Err(CampusError::DuplicateWaypoint { name });
        }
        let id = self.graph.add_node(at);
        self.named_waypoints.insert(name, id);
        Ok(id)
    }

    /// Registers the entrance waypoint of an existing region.
    ///
    /// # Errors
    ///
    /// Returns [`CampusError::UnknownRegion`] when no region has that name.
    pub fn add_entrance(&mut self, region_name: &str, at: Point) -> Result<NodeId, CampusError> {
        if !self.regions.iter().any(|r| r.name() == region_name) {
            return Err(CampusError::UnknownRegion {
                name: region_name.to_string(),
            });
        }
        let id = self.graph.add_node(at);
        self.entrances.insert(region_name.to_string(), id);
        Ok(id)
    }

    /// Adds an anonymous junction waypoint.
    pub fn add_junction(&mut self, at: Point) -> NodeId {
        self.graph.add_node(at)
    }

    /// Connects two waypoints with a walkable edge.
    ///
    /// # Errors
    ///
    /// Returns [`CampusError::UnknownNode`] when either waypoint is unknown.
    pub fn connect(&mut self, a: NodeId, b: NodeId) -> Result<(), CampusError> {
        self.graph.add_edge(a, b)
    }

    /// Finalises the campus.
    #[must_use]
    pub fn build(self) -> Campus {
        Campus {
            regions: self.regions,
            graph: self.graph,
            named_waypoints: self.named_waypoints,
            entrances: self.entrances,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use mobigrid_geo::Polyline;

    fn sample_campus() -> Campus {
        let mut b = Campus::builder();
        b.add_building(
            "B1",
            Rect::new(Point::new(0.0, 10.0), Point::new(30.0, 30.0)).unwrap(),
        )
        .unwrap();
        b.add_road(
            "R1",
            Polyline::new(vec![Point::new(-50.0, 0.0), Point::new(50.0, 0.0)]).unwrap(),
            8.0,
        )
        .unwrap();
        let g = b.add_waypoint("gate", Point::new(-50.0, 0.0)).unwrap();
        let e = b.add_entrance("B1", Point::new(15.0, 10.0)).unwrap();
        let j = b.add_junction(Point::new(15.0, 0.0));
        b.connect(g, j).unwrap();
        b.connect(j, e).unwrap();
        b.build()
    }

    #[test]
    fn locate_prefers_buildings_over_roads() {
        let mut b = Campus::builder();
        // A building overlapping the road corridor.
        b.add_building(
            "B1",
            Rect::new(Point::new(-5.0, -5.0), Point::new(5.0, 5.0)).unwrap(),
        )
        .unwrap();
        b.add_road(
            "R1",
            Polyline::new(vec![Point::new(-50.0, 0.0), Point::new(50.0, 0.0)]).unwrap(),
            8.0,
        )
        .unwrap();
        let c = b.build();
        assert_eq!(c.locate(Point::new(0.0, 0.0)).unwrap().name(), "B1");
        assert_eq!(c.locate(Point::new(20.0, 0.0)).unwrap().name(), "R1");
        assert!(c.locate(Point::new(0.0, 100.0)).is_none());
    }

    #[test]
    fn duplicate_region_names_rejected() {
        let mut b = Campus::builder();
        b.add_building(
            "B1",
            Rect::new(Point::new(0.0, 0.0), Point::new(1.0, 1.0)).unwrap(),
        )
        .unwrap();
        let err = b
            .add_building(
                "B1",
                Rect::new(Point::new(5.0, 5.0), Point::new(6.0, 6.0)).unwrap(),
            )
            .unwrap_err();
        assert!(matches!(err, CampusError::DuplicateRegion { .. }));
    }

    #[test]
    fn entrance_requires_existing_region() {
        let mut b = Campus::builder();
        let err = b.add_entrance("B9", Point::ORIGIN).unwrap_err();
        assert!(matches!(err, CampusError::UnknownRegion { .. }));
    }

    #[test]
    fn route_from_gate_to_entrance() {
        let c = sample_campus();
        let gate = c.waypoint("gate").unwrap();
        let door = c.entrance("B1").unwrap();
        let path = c.route(gate, door).unwrap();
        assert_eq!(path.length(), 65.0 + 10.0);
    }

    #[test]
    fn region_lookup_by_name_and_id() {
        let c = sample_campus();
        let b1 = c.region_by_name("B1").unwrap();
        assert_eq!(c.region(b1.id()).name(), "B1");
        assert!(c.region_by_name("Z9").is_none());
    }

    #[test]
    fn bounding_box_covers_all_regions() {
        let c = sample_campus();
        let bb = c.bounding_box();
        assert!(bb.contains(Point::new(-50.0, 0.0)));
        assert!(bb.contains(Point::new(30.0, 30.0)));
    }

    #[test]
    fn regions_of_kind_filters() {
        let c = sample_campus();
        assert_eq!(c.regions_of_kind(RegionKind::Building).count(), 1);
        assert_eq!(c.regions_of_kind(RegionKind::Road).count(), 1);
    }
}
