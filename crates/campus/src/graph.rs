use std::cmp::Ordering;
use std::collections::BinaryHeap;
use std::fmt;

use mobigrid_geo::{Point, Polyline};

use crate::CampusError;

/// Identifier of a waypoint in a [`WaypointGraph`].
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub struct NodeId(usize);

impl NodeId {
    /// The dense index of this node.
    #[must_use]
    pub const fn index(self) -> usize {
        self.0
    }
}

impl fmt::Display for NodeId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "node#{}", self.0)
    }
}

/// The walkable waypoint graph of a campus: gates, road junctions and
/// building entrances joined by edges along roads and walkways.
///
/// Linear-movement nodes route through this graph with Dijkstra's algorithm;
/// routes come back as [`Polyline`]s ready for arc-length traversal by the
/// mobility models.
///
/// # Examples
///
/// ```
/// use mobigrid_campus::WaypointGraph;
/// use mobigrid_geo::Point;
///
/// let mut g = WaypointGraph::new();
/// let a = g.add_node(Point::new(0.0, 0.0));
/// let b = g.add_node(Point::new(10.0, 0.0));
/// let c = g.add_node(Point::new(10.0, 10.0));
/// g.add_edge(a, b).unwrap();
/// g.add_edge(b, c).unwrap();
///
/// let path = g.shortest_path(a, c).unwrap();
/// assert_eq!(path.length(), 20.0);
/// ```
#[derive(Debug, Clone, Default, PartialEq)]
pub struct WaypointGraph {
    points: Vec<Point>,
    adjacency: Vec<Vec<(usize, f64)>>,
}

impl WaypointGraph {
    /// Creates an empty graph.
    #[must_use]
    pub fn new() -> Self {
        WaypointGraph::default()
    }

    /// Adds a waypoint at `point` and returns its id.
    pub fn add_node(&mut self, point: Point) -> NodeId {
        self.points.push(point);
        self.adjacency.push(Vec::new());
        NodeId(self.points.len() - 1)
    }

    /// Adds an undirected edge between `a` and `b`, weighted by Euclidean
    /// distance.
    ///
    /// # Errors
    ///
    /// Returns [`CampusError::UnknownNode`] when either endpoint does not
    /// exist.
    pub fn add_edge(&mut self, a: NodeId, b: NodeId) -> Result<(), CampusError> {
        if a.0 >= self.points.len() || b.0 >= self.points.len() {
            return Err(CampusError::UnknownNode);
        }
        let w = self.points[a.0].distance_to(self.points[b.0]);
        self.adjacency[a.0].push((b.0, w));
        self.adjacency[b.0].push((a.0, w));
        Ok(())
    }

    /// Number of waypoints.
    #[must_use]
    pub fn node_count(&self) -> usize {
        self.points.len()
    }

    /// Number of undirected edges.
    #[must_use]
    pub fn edge_count(&self) -> usize {
        self.adjacency.iter().map(Vec::len).sum::<usize>() / 2
    }

    /// The location of waypoint `id`.
    ///
    /// # Panics
    ///
    /// Panics when `id` does not belong to this graph.
    #[must_use]
    pub fn point(&self, id: NodeId) -> Point {
        self.points[id.0]
    }

    /// Iterates over every waypoint id in the graph.
    pub fn node_ids(&self) -> impl Iterator<Item = NodeId> {
        (0..self.points.len()).map(NodeId)
    }

    /// The waypoint nearest to `p`, or `None` for an empty graph.
    #[must_use]
    pub fn nearest_node(&self, p: Point) -> Option<NodeId> {
        self.points
            .iter()
            .enumerate()
            .min_by(|(_, a), (_, b)| {
                a.distance_sq_to(p)
                    .partial_cmp(&b.distance_sq_to(p))
                    .expect("finite coordinates")
            })
            .map(|(i, _)| NodeId(i))
    }

    /// Shortest path from `from` to `to` as a polyline through waypoint
    /// locations, or `None` when unreachable. A path from a node to itself
    /// is `None` (there is no line to walk).
    #[must_use]
    pub fn shortest_path(&self, from: NodeId, to: NodeId) -> Option<Polyline> {
        let nodes = self.shortest_path_nodes(from, to)?;
        if nodes.len() < 2 {
            return None;
        }
        let pts: Vec<Point> = nodes.iter().map(|n| self.points[n.0]).collect();
        Some(Polyline::new(pts).expect("path has >= 2 waypoints"))
    }

    /// Shortest path as the sequence of waypoints visited (including both
    /// endpoints), or `None` when unreachable.
    #[must_use]
    pub fn shortest_path_nodes(&self, from: NodeId, to: NodeId) -> Option<Vec<NodeId>> {
        let n = self.points.len();
        if from.0 >= n || to.0 >= n {
            return None;
        }

        #[derive(PartialEq)]
        struct State {
            cost: f64,
            node: usize,
        }
        impl Eq for State {}
        impl Ord for State {
            fn cmp(&self, other: &Self) -> Ordering {
                // Min-heap by cost, tie-broken by node index for determinism.
                other
                    .cost
                    .partial_cmp(&self.cost)
                    .expect("finite costs")
                    .then_with(|| other.node.cmp(&self.node))
            }
        }
        impl PartialOrd for State {
            fn partial_cmp(&self, other: &Self) -> Option<Ordering> {
                Some(self.cmp(other))
            }
        }

        let mut dist = vec![f64::INFINITY; n];
        let mut prev = vec![usize::MAX; n];
        let mut heap = BinaryHeap::new();
        dist[from.0] = 0.0;
        heap.push(State {
            cost: 0.0,
            node: from.0,
        });

        while let Some(State { cost, node }) = heap.pop() {
            if node == to.0 {
                break;
            }
            if cost > dist[node] {
                continue;
            }
            for &(next, w) in &self.adjacency[node] {
                let nd = cost + w;
                if nd < dist[next] {
                    dist[next] = nd;
                    prev[next] = node;
                    heap.push(State {
                        cost: nd,
                        node: next,
                    });
                }
            }
        }

        if dist[to.0].is_infinite() {
            return None;
        }
        let mut path = vec![to.0];
        let mut cur = to.0;
        while cur != from.0 {
            cur = prev[cur];
            path.push(cur);
        }
        path.reverse();
        Some(path.into_iter().map(NodeId).collect())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    /// A diamond: a-b-d is longer than a-c-d.
    fn diamond() -> (WaypointGraph, NodeId, NodeId, NodeId, NodeId) {
        let mut g = WaypointGraph::new();
        let a = g.add_node(Point::new(0.0, 0.0));
        let b = g.add_node(Point::new(0.0, 10.0));
        let c = g.add_node(Point::new(5.0, 0.0));
        let d = g.add_node(Point::new(10.0, 0.0));
        g.add_edge(a, b).unwrap();
        g.add_edge(b, d).unwrap();
        g.add_edge(a, c).unwrap();
        g.add_edge(c, d).unwrap();
        (g, a, b, c, d)
    }

    #[test]
    fn shortest_path_picks_cheaper_route() {
        let (g, a, _b, c, d) = diamond();
        let nodes = g.shortest_path_nodes(a, d).unwrap();
        assert_eq!(nodes, vec![a, c, d]);
        let line = g.shortest_path(a, d).unwrap();
        assert_eq!(line.length(), 10.0);
    }

    #[test]
    fn unreachable_returns_none() {
        let mut g = WaypointGraph::new();
        let a = g.add_node(Point::new(0.0, 0.0));
        let b = g.add_node(Point::new(1.0, 0.0));
        assert!(g.shortest_path(a, b).is_none());
    }

    #[test]
    fn self_path_is_none() {
        let (g, a, ..) = diamond();
        assert!(g.shortest_path(a, a).is_none());
    }

    #[test]
    fn nearest_node_finds_closest() {
        let (g, _a, b, ..) = diamond();
        assert_eq!(g.nearest_node(Point::new(0.5, 9.0)), Some(b));
    }

    #[test]
    fn nearest_node_of_empty_graph_is_none() {
        assert_eq!(WaypointGraph::new().nearest_node(Point::ORIGIN), None);
    }

    #[test]
    fn edge_to_unknown_node_errors() {
        let mut g = WaypointGraph::new();
        let a = g.add_node(Point::ORIGIN);
        let ghost = NodeId(99);
        assert_eq!(g.add_edge(a, ghost), Err(CampusError::UnknownNode));
    }

    #[test]
    fn counts_track_structure() {
        let (g, ..) = diamond();
        assert_eq!(g.node_count(), 4);
        assert_eq!(g.edge_count(), 4);
    }

    #[test]
    fn path_on_chain_traverses_all_nodes() {
        let mut g = WaypointGraph::new();
        let nodes: Vec<NodeId> = (0..5)
            .map(|i| g.add_node(Point::new(f64::from(i) * 2.0, 0.0)))
            .collect();
        for w in nodes.windows(2) {
            g.add_edge(w[0], w[1]).unwrap();
        }
        let path = g.shortest_path_nodes(nodes[0], nodes[4]).unwrap();
        assert_eq!(path.len(), 5);
        assert_eq!(g.shortest_path(nodes[0], nodes[4]).unwrap().length(), 8.0);
    }
}
