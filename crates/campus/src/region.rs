use std::fmt;

use serde::{Deserialize, Serialize};

use mobigrid_geo::{Point, Polyline, Rect};

use crate::CampusError;

/// Identifier of a region within its campus.
///
/// Indices are assigned densely in registration order, so experiment code can
/// use them directly as array indices for per-region accumulators.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Serialize, Deserialize)]
pub struct RegionId(u32);

impl RegionId {
    /// Creates an id from a raw dense index.
    #[must_use]
    pub const fn from_index(index: u32) -> Self {
        RegionId(index)
    }

    /// The dense index of this region.
    #[must_use]
    pub const fn index(self) -> usize {
        self.0 as usize
    }
}

impl fmt::Display for RegionId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "region#{}", self.0)
    }
}

/// The paper's two region categories. Road regions host linear movers
/// (pedestrians and vehicles); buildings host stop, random-movement and slow
/// linear-movement nodes.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum RegionKind {
    /// An indoor region (B1–B6): wireless Internet coverage.
    Building,
    /// An outdoor road (R1–R5): cellular coverage.
    Road,
}

impl fmt::Display for RegionKind {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            RegionKind::Building => write!(f, "building"),
            RegionKind::Road => write!(f, "road"),
        }
    }
}

/// The geometric footprint of a region.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub enum RegionShape {
    /// A rectangular footprint (buildings).
    Rect(Rect),
    /// A road corridor: a centreline with a constant width.
    Corridor {
        /// The road centreline.
        spine: Polyline,
        /// Full corridor width in metres.
        width: f64,
    },
}

impl RegionShape {
    /// Returns `true` when `p` lies within the shape.
    #[must_use]
    pub fn contains(&self, p: Point) -> bool {
        match self {
            RegionShape::Rect(r) => r.contains(p),
            RegionShape::Corridor { spine, width } => spine.distance_to_point(p) <= width / 2.0,
        }
    }

    /// A representative interior point (rect centre, or corridor midpoint).
    #[must_use]
    pub fn anchor(&self) -> Point {
        match self {
            RegionShape::Rect(r) => r.center(),
            RegionShape::Corridor { spine, .. } => spine.point_at_distance(spine.length() / 2.0),
        }
    }

    /// Axis-aligned bounding box of the shape.
    #[must_use]
    pub fn bounding_box(&self) -> Rect {
        match self {
            RegionShape::Rect(r) => *r,
            RegionShape::Corridor { spine, width } => {
                Rect::bounding(spine.vertices().iter().copied())
                    .expect("polyline has vertices")
                    .inflated(width / 2.0)
            }
        }
    }

    /// Maps unit-square coordinates to a point inside the shape: rects use
    /// `(u, v)` directly; corridors use `u` as arc-length fraction and `v`
    /// as lateral offset.
    #[must_use]
    pub fn point_at_uv(&self, u: f64, v: f64) -> Point {
        match self {
            RegionShape::Rect(r) => r.point_at_uv(u, v),
            RegionShape::Corridor { spine, width } => {
                let s = u.clamp(0.0, 1.0) * spine.length();
                let p = spine.point_at_distance(s);
                // Lateral offset perpendicular to the local leg direction.
                let eps = (spine.length() * 1e-3).max(1e-6);
                let ahead = spine.point_at_distance((s + eps).min(spine.length()));
                let behind = spine.point_at_distance((s - eps).max(0.0));
                let dir = (ahead - behind).normalized();
                match dir {
                    Some(d) => {
                        let lateral = (v.clamp(0.0, 1.0) - 0.5) * width;
                        p + d.perpendicular() * lateral
                    }
                    None => p,
                }
            }
        }
    }
}

/// A named campus region.
///
/// # Examples
///
/// ```
/// # fn main() -> Result<(), Box<dyn std::error::Error>> {
/// use mobigrid_campus::{Region, RegionId, RegionKind};
/// use mobigrid_geo::{Point, Rect};
///
/// let footprint = Rect::new(Point::new(0.0, 0.0), Point::new(60.0, 40.0))?;
/// let b1 = Region::building(RegionId::from_index(0), "B1", footprint);
/// assert!(b1.contains(Point::new(30.0, 20.0)));
/// assert_eq!(b1.kind(), RegionKind::Building);
/// # Ok(())
/// # }
/// ```
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct Region {
    id: RegionId,
    name: String,
    kind: RegionKind,
    shape: RegionShape,
}

impl Region {
    /// Creates a rectangular building region.
    #[must_use]
    pub fn building(id: RegionId, name: impl Into<String>, footprint: Rect) -> Self {
        Region {
            id,
            name: name.into(),
            kind: RegionKind::Building,
            shape: RegionShape::Rect(footprint),
        }
    }

    /// Creates a road region as a corridor around `spine`.
    ///
    /// # Errors
    ///
    /// Returns [`CampusError::InvalidCorridorWidth`] for non-positive widths.
    pub fn road(
        id: RegionId,
        name: impl Into<String>,
        spine: Polyline,
        width: f64,
    ) -> Result<Self, CampusError> {
        if !width.is_finite() || width <= 0.0 {
            return Err(CampusError::InvalidCorridorWidth);
        }
        Ok(Region {
            id,
            name: name.into(),
            kind: RegionKind::Road,
            shape: RegionShape::Corridor { spine, width },
        })
    }

    /// The region's id within its campus.
    #[must_use]
    pub fn id(&self) -> RegionId {
        self.id
    }

    /// The region's name (e.g. `"B4"` or `"R2"`).
    #[must_use]
    pub fn name(&self) -> &str {
        &self.name
    }

    /// Building or road.
    #[must_use]
    pub fn kind(&self) -> RegionKind {
        self.kind
    }

    /// The region's footprint.
    #[must_use]
    pub fn shape(&self) -> &RegionShape {
        &self.shape
    }

    /// Returns `true` when `p` lies within the region.
    #[must_use]
    pub fn contains(&self, p: Point) -> bool {
        self.shape.contains(p)
    }

    /// A representative interior point.
    #[must_use]
    pub fn anchor(&self) -> Point {
        self.shape.anchor()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn rect() -> Rect {
        Rect::new(Point::new(0.0, 0.0), Point::new(60.0, 40.0)).unwrap()
    }

    fn spine() -> Polyline {
        Polyline::new(vec![Point::new(0.0, 0.0), Point::new(100.0, 0.0)]).unwrap()
    }

    #[test]
    fn building_contains_interior() {
        let b = Region::building(RegionId::from_index(0), "B1", rect());
        assert!(b.contains(Point::new(1.0, 1.0)));
        assert!(!b.contains(Point::new(61.0, 1.0)));
        assert_eq!(b.anchor(), Point::new(30.0, 20.0));
    }

    #[test]
    fn corridor_contains_points_within_half_width() {
        let r = Region::road(RegionId::from_index(1), "R1", spine(), 8.0).unwrap();
        assert!(r.contains(Point::new(50.0, 3.9)));
        assert!(r.contains(Point::new(50.0, -4.0)));
        assert!(!r.contains(Point::new(50.0, 4.1)));
        assert_eq!(r.kind(), RegionKind::Road);
    }

    #[test]
    fn corridor_rejects_bad_width() {
        assert_eq!(
            Region::road(RegionId::from_index(1), "R1", spine(), 0.0),
            Err(CampusError::InvalidCorridorWidth)
        );
    }

    #[test]
    fn corridor_anchor_is_midpoint() {
        let r = Region::road(RegionId::from_index(1), "R1", spine(), 8.0).unwrap();
        assert_eq!(r.anchor(), Point::new(50.0, 0.0));
    }

    #[test]
    fn corridor_bounding_box_includes_width() {
        let r = Region::road(RegionId::from_index(1), "R1", spine(), 8.0).unwrap();
        let bb = r.shape().bounding_box();
        assert!(bb.contains(Point::new(0.0, 4.0)));
        assert!(bb.contains(Point::new(100.0, -4.0)));
    }

    #[test]
    fn uv_sampling_stays_inside_shape() {
        let b = Region::building(RegionId::from_index(0), "B1", rect());
        let r = Region::road(RegionId::from_index(1), "R1", spine(), 8.0).unwrap();
        for i in 0..10 {
            for j in 0..10 {
                let (u, v) = (f64::from(i) / 9.0, f64::from(j) / 9.0);
                assert!(b.contains(b.shape().point_at_uv(u, v)));
                assert!(r.contains(r.shape().point_at_uv(u, v)), "u={u} v={v}");
            }
        }
    }

    #[test]
    fn region_id_round_trips() {
        let id = RegionId::from_index(7);
        assert_eq!(id.index(), 7);
        assert_eq!(id.to_string(), "region#7");
    }
}
