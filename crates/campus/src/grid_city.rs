//! A parametric grid-city layout for scalability experiments.
//!
//! The paper evaluates one campus with 11 regions and 140 nodes. To ask how
//! the ADF behaves as the deployment grows — more regions, more clusters,
//! more nodes — we need arbitrarily large but structurally comparable maps:
//! a Manhattan grid of blocks, each block holding one building, with roads
//! along every grid line.

use mobigrid_geo::{Point, Polyline, Rect};

use crate::{Campus, CampusBuilder};

/// Side length of one city block, in metres.
pub const BLOCK_SIZE: f64 = 120.0;

/// Margin between a block's roads and its building footprint, in metres.
pub const BUILDING_INSET: f64 = 20.0;

impl Campus {
    /// Builds a grid city of `blocks_x × blocks_y` blocks.
    ///
    /// The layout has `blocks_x + 1` vertical roads (`V0…`), `blocks_y + 1`
    /// horizontal roads (`H0…`), and one building per block (`B0…`, row
    /// major). Every road intersection is a waypoint; each building's
    /// entrance connects to its south-west intersection, so the whole graph
    /// is connected.
    ///
    /// # Panics
    ///
    /// Panics when either dimension is zero.
    ///
    /// # Examples
    ///
    /// ```
    /// use mobigrid_campus::{Campus, RegionKind};
    ///
    /// let city = Campus::grid_city(3, 2);
    /// assert_eq!(city.regions_of_kind(RegionKind::Road).count(), 4 + 3);
    /// assert_eq!(city.regions_of_kind(RegionKind::Building).count(), 6);
    /// ```
    #[must_use]
    pub fn grid_city(blocks_x: usize, blocks_y: usize) -> Campus {
        assert!(
            blocks_x > 0 && blocks_y > 0,
            "city needs at least one block"
        );
        let mut b: CampusBuilder = Campus::builder();
        let width = blocks_x as f64 * BLOCK_SIZE;
        let height = blocks_y as f64 * BLOCK_SIZE;

        // Buildings first so entrances can reference them by name.
        for by in 0..blocks_y {
            for bx in 0..blocks_x {
                let name = format!("B{}", by * blocks_x + bx);
                let min = Point::new(
                    bx as f64 * BLOCK_SIZE + BUILDING_INSET,
                    by as f64 * BLOCK_SIZE + BUILDING_INSET,
                );
                let max = Point::new(
                    (bx + 1) as f64 * BLOCK_SIZE - BUILDING_INSET,
                    (by + 1) as f64 * BLOCK_SIZE - BUILDING_INSET,
                );
                let rect = Rect::new(min, max).expect("inset < block size");
                b.add_building(name, rect).expect("unique block name");
            }
        }

        // Roads along every grid line.
        for i in 0..=blocks_x {
            let x = i as f64 * BLOCK_SIZE;
            let spine = Polyline::new(vec![Point::new(x, 0.0), Point::new(x, height)])
                .expect("two distinct points");
            b.add_road(format!("V{i}"), spine, crate::ROAD_WIDTH)
                .expect("unique road name");
        }
        for j in 0..=blocks_y {
            let y = j as f64 * BLOCK_SIZE;
            let spine = Polyline::new(vec![Point::new(0.0, y), Point::new(width, y)])
                .expect("two distinct points");
            b.add_road(format!("H{j}"), spine, crate::ROAD_WIDTH)
                .expect("unique road name");
        }

        // Intersection waypoints and the Manhattan edge lattice. Index
        // symmetry between the two passes reads clearer than iterator
        // adapters here.
        #[allow(clippy::needless_range_loop)]
        let junctions = {
            let mut junctions = vec![vec![None; blocks_x + 1]; blocks_y + 1];
            for j in 0..=blocks_y {
                for i in 0..=blocks_x {
                    let node = b
                        .add_waypoint(
                            format!("x{i}y{j}"),
                            Point::new(i as f64 * BLOCK_SIZE, j as f64 * BLOCK_SIZE),
                        )
                        .expect("unique junction name");
                    junctions[j][i] = Some(node);
                }
            }
            for j in 0..=blocks_y {
                for i in 0..=blocks_x {
                    let here = junctions[j][i].expect("created above");
                    if i > 0 {
                        b.connect(junctions[j][i - 1].expect("created"), here)
                            .expect("nodes exist");
                    }
                    if j > 0 {
                        b.connect(junctions[j - 1][i].expect("created"), here)
                            .expect("nodes exist");
                    }
                }
            }
            junctions
        };

        // Building entrances hang off the south-west intersection.
        #[allow(clippy::needless_range_loop)]
        for by in 0..blocks_y {
            for bx in 0..blocks_x {
                let name = format!("B{}", by * blocks_x + bx);
                let door = Point::new(
                    bx as f64 * BLOCK_SIZE + BUILDING_INSET,
                    by as f64 * BLOCK_SIZE + BUILDING_INSET,
                );
                let entrance = b.add_entrance(&name, door).expect("building exists");
                b.connect(junctions[by][bx].expect("created"), entrance)
                    .expect("nodes exist");
            }
        }

        b.build()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::RegionKind;

    #[test]
    fn region_counts_scale_with_dimensions() {
        let city = Campus::grid_city(4, 3);
        assert_eq!(city.regions_of_kind(RegionKind::Road).count(), 5 + 4);
        assert_eq!(city.regions_of_kind(RegionKind::Building).count(), 12);
    }

    #[test]
    fn single_block_city_is_valid() {
        let city = Campus::grid_city(1, 1);
        assert_eq!(city.regions().len(), 4 + 1);
        assert!(city.entrance("B0").is_some());
    }

    #[test]
    fn whole_graph_is_connected() {
        let city = Campus::grid_city(3, 3);
        let g = city.graph();
        let origin = city.waypoint("x0y0").expect("corner junction");
        for target in g.node_ids() {
            if target != origin {
                assert!(
                    g.shortest_path_nodes(origin, target).is_some(),
                    "node {target} unreachable"
                );
            }
        }
    }

    #[test]
    fn buildings_do_not_overlap_roads() {
        let city = Campus::grid_city(2, 2);
        for building in city.regions_of_kind(RegionKind::Building) {
            let anchor = building.anchor();
            for road in city.regions_of_kind(RegionKind::Road) {
                assert!(
                    !road.contains(anchor),
                    "{} centre sits on {}",
                    building.name(),
                    road.name()
                );
            }
        }
    }

    #[test]
    fn routes_span_the_city() {
        let city = Campus::grid_city(5, 5);
        let from = city.waypoint("x0y0").expect("exists");
        let to = city.waypoint("x5y5").expect("exists");
        let route = city.route(from, to).expect("reachable");
        // Manhattan distance: 5 blocks east + 5 blocks north.
        assert!((route.length() - 10.0 * BLOCK_SIZE).abs() < 1e-6);
    }
}
