//! The default campus layout, mirroring the paper's Figure-1 experiment site:
//! five roads, six buildings and two gates on the south side, with the
//! library (B4) reachable from gate B exactly as in Tom's §3.1 scenario.

use mobigrid_geo::{Point, Polyline, Rect};

use crate::{Campus, CampusBuilder};

/// Names of the six building regions, in id order.
pub const BUILDING_NAMES: [&str; 6] = ["B1", "B2", "B3", "B4", "B5", "B6"];

/// Names of the five road regions, in id order.
pub const ROAD_NAMES: [&str; 5] = ["R1", "R2", "R3", "R4", "R5"];

/// Full width of every road corridor, in metres.
pub const ROAD_WIDTH: f64 = 8.0;

fn rect(x0: f64, y0: f64, x1: f64, y1: f64) -> Rect {
    Rect::new(Point::new(x0, y0), Point::new(x1, y1)).expect("static layout is valid")
}

fn line(points: &[(f64, f64)]) -> Polyline {
    Polyline::new(points.iter().map(|&(x, y)| Point::new(x, y)).collect())
        .expect("static layout is valid")
}

impl Campus {
    /// Builds the paper-shaped default campus.
    ///
    /// Layout (south at `y = 0`, coordinates in metres):
    ///
    /// * **Gates** A `(100, 0)` and B `(400, 0)` on the south boundary, with
    ///   the bus stop between them.
    /// * **R1** — the east–west spine road at `y = 200`.
    /// * **R4**/**R2** — north–south roads linking gates A/B to R1.
    /// * **R3** — north from R1 to building B3.
    /// * **R5** — north from R1 to the library (B4) and lecture hall (B6).
    /// * **B1, B2, B5** — flank R1; **B3, B4, B6** — up R3/R5.
    ///
    /// The returned campus has exactly the paper's 11 regions (6 buildings +
    /// 5 roads) and a connected waypoint graph covering every entrance.
    ///
    /// # Examples
    ///
    /// ```
    /// let campus = mobigrid_campus::Campus::inha_like();
    /// assert_eq!(campus.regions().len(), 11);
    /// assert!(campus.waypoint("bus_stop").is_some());
    /// ```
    #[must_use]
    pub fn inha_like() -> Campus {
        let mut b: CampusBuilder = Campus::builder();

        // --- Buildings (B1..B6) ---
        b.add_building("B1", rect(70.0, 210.0, 130.0, 270.0))
            .expect("unique name");
        b.add_building("B2", rect(370.0, 210.0, 430.0, 270.0))
            .expect("unique name");
        b.add_building("B3", rect(120.0, 350.0, 180.0, 410.0))
            .expect("unique name");
        b.add_building("B4", rect(220.0, 330.0, 280.0, 390.0))
            .expect("unique name");
        b.add_building("B5", rect(440.0, 170.0, 500.0, 230.0))
            .expect("unique name");
        b.add_building("B6", rect(300.0, 330.0, 360.0, 390.0))
            .expect("unique name");

        // --- Roads (R1..R5) ---
        b.add_road("R1", line(&[(50.0, 200.0), (450.0, 200.0)]), ROAD_WIDTH)
            .expect("valid road");
        b.add_road("R2", line(&[(400.0, 0.0), (400.0, 200.0)]), ROAD_WIDTH)
            .expect("valid road");
        b.add_road("R3", line(&[(150.0, 200.0), (150.0, 350.0)]), ROAD_WIDTH)
            .expect("valid road");
        b.add_road("R4", line(&[(100.0, 0.0), (100.0, 200.0)]), ROAD_WIDTH)
            .expect("valid road");
        b.add_road("R5", line(&[(250.0, 200.0), (250.0, 330.0)]), ROAD_WIDTH)
            .expect("valid road");

        // --- Gates and the bus stop ---
        let gate_a = b
            .add_waypoint("gate_a", Point::new(100.0, 0.0))
            .expect("unique");
        let gate_b = b
            .add_waypoint("gate_b", Point::new(400.0, 0.0))
            .expect("unique");
        let bus_stop = b
            .add_waypoint("bus_stop", Point::new(250.0, 0.0))
            .expect("unique");

        // --- Road junctions along R1 ---
        let j_r4 = b
            .add_waypoint("j_r4_r1", Point::new(100.0, 200.0))
            .expect("unique");
        let j_r3 = b
            .add_waypoint("j_r3_r1", Point::new(150.0, 200.0))
            .expect("unique");
        let j_r5 = b
            .add_waypoint("j_r5_r1", Point::new(250.0, 200.0))
            .expect("unique");
        let j_r2 = b
            .add_waypoint("j_r2_r1", Point::new(400.0, 200.0))
            .expect("unique");
        let r3_end = b
            .add_waypoint("r3_end", Point::new(150.0, 350.0))
            .expect("unique");
        let r5_end = b
            .add_waypoint("r5_end", Point::new(250.0, 330.0))
            .expect("unique");

        // --- Building entrances ---
        let e_b1 = b
            .add_entrance("B1", Point::new(100.0, 210.0))
            .expect("B1 exists");
        let e_b2 = b
            .add_entrance("B2", Point::new(400.0, 210.0))
            .expect("B2 exists");
        let e_b3 = b
            .add_entrance("B3", Point::new(150.0, 352.0))
            .expect("B3 exists");
        let e_b4 = b
            .add_entrance("B4", Point::new(250.0, 332.0))
            .expect("B4 exists");
        let e_b5 = b
            .add_entrance("B5", Point::new(440.0, 200.0))
            .expect("B5 exists");
        let e_b6 = b
            .add_entrance("B6", Point::new(302.0, 340.0))
            .expect("B6 exists");

        // --- Edges: south boundary walk ---
        b.connect(gate_a, bus_stop).expect("nodes exist");
        b.connect(bus_stop, gate_b).expect("nodes exist");

        // --- Edges: gate roads (R4, R2) ---
        b.connect(gate_a, j_r4).expect("nodes exist");
        b.connect(gate_b, j_r2).expect("nodes exist");

        // --- Edges: the R1 spine ---
        b.connect(j_r4, j_r3).expect("nodes exist");
        b.connect(j_r3, j_r5).expect("nodes exist");
        b.connect(j_r5, j_r2).expect("nodes exist");
        b.connect(j_r2, e_b5).expect("nodes exist");

        // --- Edges: north roads (R3, R5) ---
        b.connect(j_r3, r3_end).expect("nodes exist");
        b.connect(j_r5, r5_end).expect("nodes exist");

        // --- Edges: entrances ---
        b.connect(j_r4, e_b1).expect("nodes exist");
        b.connect(j_r2, e_b2).expect("nodes exist");
        b.connect(r3_end, e_b3).expect("nodes exist");
        b.connect(r5_end, e_b4).expect("nodes exist");
        b.connect(r5_end, e_b6).expect("nodes exist");

        b.build()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::RegionKind;

    #[test]
    fn has_eleven_regions() {
        let c = Campus::inha_like();
        assert_eq!(c.regions().len(), 11);
        assert_eq!(c.regions_of_kind(RegionKind::Building).count(), 6);
        assert_eq!(c.regions_of_kind(RegionKind::Road).count(), 5);
    }

    #[test]
    fn all_named_regions_exist() {
        let c = Campus::inha_like();
        for name in BUILDING_NAMES.iter().chain(&ROAD_NAMES) {
            assert!(c.region_by_name(name).is_some(), "missing {name}");
        }
    }

    #[test]
    fn every_building_has_an_entrance() {
        let c = Campus::inha_like();
        for name in BUILDING_NAMES {
            assert!(c.entrance(name).is_some(), "no entrance for {name}");
        }
    }

    #[test]
    fn toms_morning_route_gate_b_to_library() {
        // Scenario step (1): gate B -> R2 -> library (B4).
        let c = Campus::inha_like();
        let from = c.waypoint("gate_b").unwrap();
        let to = c.entrance("B4").unwrap();
        let path = c.route(from, to).expect("library reachable from gate B");
        // R2 (200 m) + part of R1 (150 m) + R5 (130 m) + doorstep (2 m).
        assert!((path.length() - 482.0).abs() < 1.0, "len={}", path.length());
    }

    #[test]
    fn toms_afternoon_route_library_to_b3_changes_direction_twice() {
        // Scenario step (8): B4 -> R5? No — paper: via R2, R1 and R3. In our
        // layout the shortest walk is R5 south, R1 west, R3 north: two turns
        // at the R5/R1 and R1/R3 junctions, matching the "twice changes of
        // direction ... at the crossroads" observation.
        let c = Campus::inha_like();
        let from = c.entrance("B4").unwrap();
        let to = c.entrance("B3").unwrap();
        let nodes = c
            .graph()
            .shortest_path_nodes(from, to)
            .expect("B3 reachable from B4");
        // e_b4 -> r5_end -> j_r5 -> j_r3 -> r3_end -> e_b3
        assert_eq!(nodes.len(), 6);
    }

    #[test]
    fn entire_graph_is_connected() {
        let c = Campus::inha_like();
        let g = c.graph();
        let origin = c.waypoint("gate_a").unwrap();
        for target in g.node_ids() {
            if target != origin {
                assert!(
                    g.shortest_path_nodes(origin, target).is_some(),
                    "node {target} unreachable from gate A"
                );
            }
        }
    }

    #[test]
    fn entrances_are_inside_or_on_their_building() {
        let c = Campus::inha_like();
        for name in BUILDING_NAMES {
            let node = c.entrance(name).unwrap();
            let p = c.graph().point(node);
            let region = c.region_by_name(name).unwrap();
            // Entrances sit on or within 3 m of the footprint boundary.
            let bb = region.shape().bounding_box().inflated(3.0);
            assert!(bb.contains(p), "entrance of {name} at {p} is far away");
        }
    }

    #[test]
    fn roads_do_not_contain_building_anchors() {
        let c = Campus::inha_like();
        for b in BUILDING_NAMES {
            let anchor = c.region_by_name(b).unwrap().anchor();
            let located = c.locate(anchor).unwrap();
            assert_eq!(located.name(), b);
        }
    }

    #[test]
    fn road_anchors_locate_on_a_road() {
        // Road midpoints can coincide with junctions shared between two
        // corridors (R1's midpoint is the R1/R5 junction), so assert the
        // kind rather than the specific road.
        let c = Campus::inha_like();
        for r in ROAD_NAMES {
            let region = c.region_by_name(r).unwrap();
            let anchor = region.anchor();
            let located = c.locate(anchor).unwrap();
            assert_eq!(located.kind(), RegionKind::Road, "anchor {anchor}");
            assert!(region.contains(anchor));
        }
    }

    #[test]
    fn bus_stop_is_between_the_gates() {
        let c = Campus::inha_like();
        let a = c.graph().point(c.waypoint("gate_a").unwrap());
        let b = c.graph().point(c.waypoint("gate_b").unwrap());
        let s = c.graph().point(c.waypoint("bus_stop").unwrap());
        assert!(s.x > a.x && s.x < b.x);
        assert_eq!(s.y, 0.0);
    }
}
