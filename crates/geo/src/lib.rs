//! 2-D geometry substrate for the mobigrid workspace.
//!
//! Every other crate in the workspace — the campus map, the mobility models,
//! the wireless coverage model and the adaptive distance filter itself — works
//! in a flat two-dimensional metric space measured in metres. This crate
//! provides the shared vocabulary for that space:
//!
//! * [`Point`] — a location in the plane,
//! * [`Vec2`] — a displacement between locations,
//! * [`Heading`] — a direction of travel with correct angular wrap-around,
//! * [`Segment`], [`Polyline`] — straight paths and arc-length parametrised
//!   walks along multi-leg paths,
//! * [`Rect`], [`Polygon`] — region shapes with containment queries.
//!
//! # Examples
//!
//! ```
//! use mobigrid_geo::{Point, Vec2, Heading};
//!
//! let gate = Point::new(0.0, 0.0);
//! let library = Point::new(30.0, 40.0);
//! assert_eq!(gate.distance_to(library), 50.0);
//!
//! let step = Vec2::from_polar(10.0, Heading::from_degrees(90.0));
//! let moved = gate + step;
//! assert!((moved.y - 10.0).abs() < 1e-9);
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

mod error;
mod heading;
mod point;
mod polygon;
mod polyline;
mod rect;
mod segment;
mod vec2;

pub use error::GeoError;
pub use heading::{normalize_radians, Heading};
pub use point::Point;
pub use polygon::Polygon;
pub use polyline::Polyline;
pub use rect::Rect;
pub use segment::Segment;
pub use vec2::Vec2;

/// Numeric tolerance used by approximate comparisons throughout the crate.
pub const EPSILON: f64 = 1e-9;

/// Returns `true` when two floating-point lengths are equal within [`EPSILON`].
///
/// # Examples
///
/// ```
/// assert!(mobigrid_geo::approx_eq(0.1 + 0.2, 0.3));
/// assert!(!mobigrid_geo::approx_eq(1.0, 1.1));
/// ```
#[must_use]
pub fn approx_eq(a: f64, b: f64) -> bool {
    (a - b).abs() <= EPSILON * (1.0 + a.abs().max(b.abs()))
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn approx_eq_accepts_tiny_differences() {
        assert!(approx_eq(1.0, 1.0 + 1e-12));
    }

    #[test]
    fn approx_eq_rejects_visible_differences() {
        assert!(!approx_eq(1.0, 1.001));
    }

    #[test]
    fn approx_eq_scales_with_magnitude() {
        assert!(approx_eq(1e12, 1e12 + 1.0e2));
    }
}
