use std::fmt;
use std::ops::{Add, AddAssign, Div, Mul, Neg, Sub, SubAssign};

use serde::{Deserialize, Serialize};

use crate::Heading;

/// A displacement in the plane, in metres.
///
/// Where [`Point`](crate::Point) answers *where*, `Vec2` answers *how far and
/// in which direction*. Velocities in the mobility models are `Vec2`s scaled
/// by time; the adaptive distance filter compares the norm of accumulated
/// displacement against its distance threshold.
///
/// # Examples
///
/// ```
/// use mobigrid_geo::{Heading, Vec2};
///
/// let east = Vec2::from_polar(2.0, Heading::from_degrees(0.0));
/// assert!((east.dx - 2.0).abs() < 1e-9);
/// assert!(east.dy.abs() < 1e-9);
/// assert!((east.norm() - 2.0).abs() < 1e-12);
/// ```
#[derive(Debug, Clone, Copy, PartialEq, Default, Serialize, Deserialize)]
pub struct Vec2 {
    /// Easting component in metres.
    pub dx: f64,
    /// Northing component in metres.
    pub dy: f64,
}

impl Vec2 {
    /// The zero displacement.
    pub const ZERO: Vec2 = Vec2 { dx: 0.0, dy: 0.0 };

    /// Creates a displacement of `(dx, dy)` metres.
    #[must_use]
    pub const fn new(dx: f64, dy: f64) -> Self {
        Vec2 { dx, dy }
    }

    /// Builds the vector of length `magnitude` pointing along `heading`.
    ///
    /// Headings are measured counter-clockwise from the positive x axis, so a
    /// heading of 90° points along positive y.
    #[must_use]
    pub fn from_polar(magnitude: f64, heading: Heading) -> Self {
        Vec2 {
            dx: magnitude * heading.radians().cos(),
            dy: magnitude * heading.radians().sin(),
        }
    }

    /// Euclidean length of the vector, in metres.
    #[must_use]
    pub fn norm(self) -> f64 {
        self.dx.hypot(self.dy)
    }

    /// Squared length; avoids the square root when only comparing magnitudes.
    #[must_use]
    pub fn norm_sq(self) -> f64 {
        self.dot(self)
    }

    /// Dot product with `other`.
    #[must_use]
    pub fn dot(self, other: Vec2) -> f64 {
        self.dx * other.dx + self.dy * other.dy
    }

    /// 2-D cross product (z component of the 3-D cross product).
    ///
    /// Positive when `other` lies counter-clockwise of `self`.
    #[must_use]
    pub fn cross(self, other: Vec2) -> f64 {
        self.dx * other.dy - self.dy * other.dx
    }

    /// Returns the unit vector in the same direction, or `None` for the zero
    /// vector.
    #[must_use]
    pub fn normalized(self) -> Option<Vec2> {
        let n = self.norm();
        if n == 0.0 {
            None
        } else {
            Some(self / n)
        }
    }

    /// The direction of this displacement, or `None` for the zero vector.
    #[must_use]
    pub fn heading(self) -> Option<Heading> {
        if self.dx == 0.0 && self.dy == 0.0 {
            None
        } else {
            Some(Heading::from_radians(self.dy.atan2(self.dx)))
        }
    }

    /// Rotates the vector counter-clockwise by `angle` radians.
    #[must_use]
    pub fn rotated(self, angle: f64) -> Vec2 {
        let (s, c) = angle.sin_cos();
        Vec2 {
            dx: self.dx * c - self.dy * s,
            dy: self.dx * s + self.dy * c,
        }
    }

    /// The vector rotated 90° counter-clockwise.
    #[must_use]
    pub fn perpendicular(self) -> Vec2 {
        Vec2 {
            dx: -self.dy,
            dy: self.dx,
        }
    }

    /// Clamps the magnitude to at most `max`, preserving direction.
    #[must_use]
    pub fn clamped(self, max: f64) -> Vec2 {
        let n = self.norm();
        if n > max && n > 0.0 {
            self * (max / n)
        } else {
            self
        }
    }
}

impl fmt::Display for Vec2 {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "<{:.3}, {:.3}>", self.dx, self.dy)
    }
}

impl Add for Vec2 {
    type Output = Vec2;

    fn add(self, rhs: Vec2) -> Vec2 {
        Vec2::new(self.dx + rhs.dx, self.dy + rhs.dy)
    }
}

impl AddAssign for Vec2 {
    fn add_assign(&mut self, rhs: Vec2) {
        self.dx += rhs.dx;
        self.dy += rhs.dy;
    }
}

impl Sub for Vec2 {
    type Output = Vec2;

    fn sub(self, rhs: Vec2) -> Vec2 {
        Vec2::new(self.dx - rhs.dx, self.dy - rhs.dy)
    }
}

impl SubAssign for Vec2 {
    fn sub_assign(&mut self, rhs: Vec2) {
        self.dx -= rhs.dx;
        self.dy -= rhs.dy;
    }
}

impl Mul<f64> for Vec2 {
    type Output = Vec2;

    fn mul(self, rhs: f64) -> Vec2 {
        Vec2::new(self.dx * rhs, self.dy * rhs)
    }
}

impl Mul<Vec2> for f64 {
    type Output = Vec2;

    fn mul(self, rhs: Vec2) -> Vec2 {
        rhs * self
    }
}

impl Div<f64> for Vec2 {
    type Output = Vec2;

    fn div(self, rhs: f64) -> Vec2 {
        Vec2::new(self.dx / rhs, self.dy / rhs)
    }
}

impl Neg for Vec2 {
    type Output = Vec2;

    fn neg(self) -> Vec2 {
        Vec2::new(-self.dx, -self.dy)
    }
}

impl From<(f64, f64)> for Vec2 {
    fn from((dx, dy): (f64, f64)) -> Self {
        Vec2::new(dx, dy)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::f64::consts::{FRAC_PI_2, PI};

    #[test]
    fn norm_of_unit_axes() {
        assert_eq!(Vec2::new(1.0, 0.0).norm(), 1.0);
        assert_eq!(Vec2::new(0.0, -1.0).norm(), 1.0);
    }

    #[test]
    fn from_polar_north() {
        let v = Vec2::from_polar(3.0, Heading::from_radians(FRAC_PI_2));
        assert!(v.dx.abs() < 1e-12);
        assert!((v.dy - 3.0).abs() < 1e-12);
    }

    #[test]
    fn polar_round_trip() {
        let h = Heading::from_degrees(37.0);
        let v = Vec2::from_polar(5.0, h);
        assert!((v.norm() - 5.0).abs() < 1e-12);
        let back = v.heading().unwrap();
        assert!((back.radians() - h.radians()).abs() < 1e-12);
    }

    #[test]
    fn zero_vector_has_no_heading() {
        assert!(Vec2::ZERO.heading().is_none());
        assert!(Vec2::ZERO.normalized().is_none());
    }

    #[test]
    fn dot_of_perpendicular_vectors_is_zero() {
        let v = Vec2::new(2.0, 3.0);
        assert!((v.dot(v.perpendicular())).abs() < 1e-12);
    }

    #[test]
    fn cross_sign_indicates_orientation() {
        let east = Vec2::new(1.0, 0.0);
        let north = Vec2::new(0.0, 1.0);
        assert!(east.cross(north) > 0.0);
        assert!(north.cross(east) < 0.0);
    }

    #[test]
    fn rotation_by_pi_negates() {
        let v = Vec2::new(1.0, 2.0);
        let r = v.rotated(PI);
        assert!((r.dx + 1.0).abs() < 1e-12);
        assert!((r.dy + 2.0).abs() < 1e-12);
    }

    #[test]
    fn clamped_preserves_short_vectors() {
        let v = Vec2::new(1.0, 0.0);
        assert_eq!(v.clamped(2.0), v);
    }

    #[test]
    fn clamped_limits_long_vectors() {
        let v = Vec2::new(3.0, 4.0).clamped(1.0);
        assert!((v.norm() - 1.0).abs() < 1e-12);
    }

    #[test]
    fn arithmetic_identities() {
        let v = Vec2::new(2.0, -1.0);
        assert_eq!(v + Vec2::ZERO, v);
        assert_eq!(v - v, Vec2::ZERO);
        assert_eq!(-(-v), v);
        assert_eq!(v * 2.0, 2.0 * v);
        assert_eq!((v * 2.0) / 2.0, v);
    }
}
