use serde::{Deserialize, Serialize};

use crate::{Heading, Point, Vec2};

/// A directed straight line segment between two points.
///
/// Roads in the campus model are polylines of segments; the mobility models
/// walk along them with arc-length parametrisation, and the wireless coverage
/// model measures distances from nodes to gateway sites via
/// [`Segment::distance_to_point`].
///
/// # Examples
///
/// ```
/// use mobigrid_geo::{Point, Segment};
///
/// let s = Segment::new(Point::new(0.0, 0.0), Point::new(10.0, 0.0));
/// assert_eq!(s.length(), 10.0);
/// assert_eq!(s.point_at(0.5), Point::new(5.0, 0.0));
/// assert_eq!(s.distance_to_point(Point::new(5.0, 3.0)), 3.0);
/// ```
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct Segment {
    /// Start point.
    pub a: Point,
    /// End point.
    pub b: Point,
}

impl Segment {
    /// Creates the segment from `a` to `b`.
    #[must_use]
    pub const fn new(a: Point, b: Point) -> Self {
        Segment { a, b }
    }

    /// Length of the segment in metres.
    #[must_use]
    pub fn length(self) -> f64 {
        self.a.distance_to(self.b)
    }

    /// The displacement from start to end.
    #[must_use]
    pub fn delta(self) -> Vec2 {
        self.b - self.a
    }

    /// Direction of travel along the segment, or `None` for a degenerate
    /// zero-length segment.
    #[must_use]
    pub fn heading(self) -> Option<Heading> {
        self.delta().heading()
    }

    /// Point at parameter `t ∈ [0, 1]` along the segment (values outside the
    /// range extrapolate).
    #[must_use]
    pub fn point_at(self, t: f64) -> Point {
        self.a.lerp(self.b, t)
    }

    /// Point at arc-length `s` metres from the start, clamped to the segment.
    #[must_use]
    pub fn point_at_distance(self, s: f64) -> Point {
        let len = self.length();
        if len == 0.0 {
            return self.a;
        }
        self.point_at((s / len).clamp(0.0, 1.0))
    }

    /// The parameter `t ∈ [0, 1]` of the point on the segment closest to `p`.
    #[must_use]
    pub fn project(self, p: Point) -> f64 {
        let d = self.delta();
        let len_sq = d.norm_sq();
        if len_sq == 0.0 {
            return 0.0;
        }
        ((p - self.a).dot(d) / len_sq).clamp(0.0, 1.0)
    }

    /// The point on the segment closest to `p`.
    #[must_use]
    pub fn closest_point(self, p: Point) -> Point {
        self.point_at(self.project(p))
    }

    /// Shortest distance from `p` to any point of the segment.
    #[must_use]
    pub fn distance_to_point(self, p: Point) -> f64 {
        self.closest_point(p).distance_to(p)
    }

    /// The segment travelled in the opposite direction.
    #[must_use]
    pub fn reversed(self) -> Segment {
        Segment::new(self.b, self.a)
    }

    /// Midpoint of the segment.
    #[must_use]
    pub fn midpoint(self) -> Point {
        self.a.midpoint(self.b)
    }

    /// Intersection point of two segments, if they cross at a single point.
    ///
    /// Collinear overlapping segments return `None` (no unique intersection).
    #[must_use]
    pub fn intersection(self, other: Segment) -> Option<Point> {
        let r = self.delta();
        let s = other.delta();
        let denom = r.cross(s);
        if denom == 0.0 {
            return None;
        }
        let qp = other.a - self.a;
        let t = qp.cross(s) / denom;
        let u = qp.cross(r) / denom;
        if (0.0..=1.0).contains(&t) && (0.0..=1.0).contains(&u) {
            Some(self.point_at(t))
        } else {
            None
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn horizontal() -> Segment {
        Segment::new(Point::new(0.0, 0.0), Point::new(10.0, 0.0))
    }

    #[test]
    fn length_and_midpoint() {
        let s = horizontal();
        assert_eq!(s.length(), 10.0);
        assert_eq!(s.midpoint(), Point::new(5.0, 0.0));
    }

    #[test]
    fn point_at_distance_clamps() {
        let s = horizontal();
        assert_eq!(s.point_at_distance(-5.0), s.a);
        assert_eq!(s.point_at_distance(25.0), s.b);
        assert_eq!(s.point_at_distance(4.0), Point::new(4.0, 0.0));
    }

    #[test]
    fn degenerate_segment_is_safe() {
        let p = Point::new(3.0, 3.0);
        let s = Segment::new(p, p);
        assert_eq!(s.length(), 0.0);
        assert!(s.heading().is_none());
        assert_eq!(s.point_at_distance(1.0), p);
        assert_eq!(s.closest_point(Point::new(9.0, 9.0)), p);
    }

    #[test]
    fn projection_clamps_to_endpoints() {
        let s = horizontal();
        assert_eq!(s.project(Point::new(-4.0, 2.0)), 0.0);
        assert_eq!(s.project(Point::new(14.0, 2.0)), 1.0);
        assert_eq!(s.project(Point::new(6.0, 2.0)), 0.6);
    }

    #[test]
    fn distance_to_point_above_midspan() {
        assert_eq!(horizontal().distance_to_point(Point::new(5.0, 3.0)), 3.0);
    }

    #[test]
    fn distance_to_point_beyond_endpoint() {
        let d = horizontal().distance_to_point(Point::new(13.0, 4.0));
        assert_eq!(d, 5.0);
    }

    #[test]
    fn crossing_segments_intersect() {
        let s1 = Segment::new(Point::new(0.0, 0.0), Point::new(10.0, 10.0));
        let s2 = Segment::new(Point::new(0.0, 10.0), Point::new(10.0, 0.0));
        let p = s1.intersection(s2).unwrap();
        assert!((p.x - 5.0).abs() < 1e-12);
        assert!((p.y - 5.0).abs() < 1e-12);
    }

    #[test]
    fn parallel_segments_do_not_intersect() {
        let s1 = horizontal();
        let s2 = Segment::new(Point::new(0.0, 1.0), Point::new(10.0, 1.0));
        assert!(s1.intersection(s2).is_none());
    }

    #[test]
    fn non_overlapping_skew_segments_do_not_intersect() {
        let s1 = horizontal();
        let s2 = Segment::new(Point::new(20.0, -1.0), Point::new(20.0, 1.0));
        assert!(s1.intersection(s2).is_none());
    }

    #[test]
    fn reversed_swaps_endpoints() {
        let s = horizontal();
        assert_eq!(s.reversed().a, s.b);
        assert_eq!(s.reversed().b, s.a);
    }
}
