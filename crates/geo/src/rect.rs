use serde::{Deserialize, Serialize};

use crate::{GeoError, Point};

/// An axis-aligned rectangle, used for building footprints and bounding boxes.
///
/// Buildings in the campus model are rectangles; the random-movement mobility
/// model bounces nodes around inside one, and the classifier uses containment
/// tests to attribute location updates to regions.
///
/// # Examples
///
/// ```
/// # fn main() -> Result<(), mobigrid_geo::GeoError> {
/// use mobigrid_geo::{Point, Rect};
///
/// let b4 = Rect::new(Point::new(0.0, 0.0), Point::new(40.0, 30.0))?;
/// assert!(b4.contains(Point::new(10.0, 10.0)));
/// assert_eq!(b4.area(), 1200.0);
/// # Ok(())
/// # }
/// ```
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct Rect {
    min: Point,
    max: Point,
}

impl Rect {
    /// Creates the rectangle with corners `min` (lower-left) and `max`
    /// (upper-right).
    ///
    /// # Errors
    ///
    /// Returns [`GeoError::InvertedRect`] when `min` exceeds `max` on either
    /// axis and [`GeoError::NonFiniteCoordinate`] for NaN/infinite corners.
    pub fn new(min: Point, max: Point) -> Result<Self, GeoError> {
        if !min.is_finite() || !max.is_finite() {
            return Err(GeoError::NonFiniteCoordinate);
        }
        if min.x > max.x || min.y > max.y {
            return Err(GeoError::InvertedRect);
        }
        Ok(Rect { min, max })
    }

    /// Creates the rectangle spanning two arbitrary corner points.
    #[must_use]
    pub fn from_corners(a: Point, b: Point) -> Self {
        Rect {
            min: Point::new(a.x.min(b.x), a.y.min(b.y)),
            max: Point::new(a.x.max(b.x), a.y.max(b.y)),
        }
    }

    /// Creates the rectangle centred on `center` with the given full `width`
    /// and `height`.
    #[must_use]
    pub fn centered(center: Point, width: f64, height: f64) -> Self {
        let hw = width.abs() / 2.0;
        let hh = height.abs() / 2.0;
        Rect {
            min: Point::new(center.x - hw, center.y - hh),
            max: Point::new(center.x + hw, center.y + hh),
        }
    }

    /// The smallest rectangle containing every point in `points`, or `None`
    /// for an empty iterator.
    #[must_use]
    pub fn bounding<I: IntoIterator<Item = Point>>(points: I) -> Option<Rect> {
        let mut iter = points.into_iter();
        let first = iter.next()?;
        let mut r = Rect {
            min: first,
            max: first,
        };
        for p in iter {
            r.min.x = r.min.x.min(p.x);
            r.min.y = r.min.y.min(p.y);
            r.max.x = r.max.x.max(p.x);
            r.max.y = r.max.y.max(p.y);
        }
        Some(r)
    }

    /// Lower-left corner.
    #[must_use]
    pub fn min(self) -> Point {
        self.min
    }

    /// Upper-right corner.
    #[must_use]
    pub fn max(self) -> Point {
        self.max
    }

    /// Width along the x axis.
    #[must_use]
    pub fn width(self) -> f64 {
        self.max.x - self.min.x
    }

    /// Height along the y axis.
    #[must_use]
    pub fn height(self) -> f64 {
        self.max.y - self.min.y
    }

    /// Area in square metres.
    #[must_use]
    pub fn area(self) -> f64 {
        self.width() * self.height()
    }

    /// Centre point of the rectangle.
    #[must_use]
    pub fn center(self) -> Point {
        self.min.midpoint(self.max)
    }

    /// Returns `true` when `p` lies inside or on the boundary.
    #[must_use]
    pub fn contains(self, p: Point) -> bool {
        p.x >= self.min.x && p.x <= self.max.x && p.y >= self.min.y && p.y <= self.max.y
    }

    /// Returns `true` when the two rectangles share any point.
    #[must_use]
    pub fn intersects(self, other: Rect) -> bool {
        self.min.x <= other.max.x
            && self.max.x >= other.min.x
            && self.min.y <= other.max.y
            && self.max.y >= other.min.y
    }

    /// The nearest point inside the rectangle to `p` (identity when `p` is
    /// already inside).
    #[must_use]
    pub fn clamp_point(self, p: Point) -> Point {
        Point::new(
            p.x.clamp(self.min.x, self.max.x),
            p.y.clamp(self.min.y, self.max.y),
        )
    }

    /// Grows (or shrinks, for negative `margin`) the rectangle by `margin` on
    /// every side. Shrinking below a point collapses to the centre.
    #[must_use]
    pub fn inflated(self, margin: f64) -> Rect {
        let c = self.center();
        let hw = (self.width() / 2.0 + margin).max(0.0);
        let hh = (self.height() / 2.0 + margin).max(0.0);
        Rect {
            min: Point::new(c.x - hw, c.y - hh),
            max: Point::new(c.x + hw, c.y + hh),
        }
    }

    /// Maps unit-square coordinates `(u, v) ∈ [0, 1]²` to a point in the
    /// rectangle; used to sample uniform positions with caller-supplied
    /// randomness.
    #[must_use]
    pub fn point_at_uv(self, u: f64, v: f64) -> Point {
        Point::new(
            self.min.x + self.width() * u.clamp(0.0, 1.0),
            self.min.y + self.height() * v.clamp(0.0, 1.0),
        )
    }

    /// The four corners in counter-clockwise order starting at `min`.
    #[must_use]
    pub fn corners(self) -> [Point; 4] {
        [
            self.min,
            Point::new(self.max.x, self.min.y),
            self.max,
            Point::new(self.min.x, self.max.y),
        ]
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn unit() -> Rect {
        Rect::new(Point::new(0.0, 0.0), Point::new(1.0, 1.0)).unwrap()
    }

    #[test]
    fn new_rejects_inverted_corners() {
        let r = Rect::new(Point::new(1.0, 0.0), Point::new(0.0, 1.0));
        assert_eq!(r, Err(GeoError::InvertedRect));
    }

    #[test]
    fn from_corners_normalises_order() {
        let r = Rect::from_corners(Point::new(5.0, 1.0), Point::new(2.0, 7.0));
        assert_eq!(r.min(), Point::new(2.0, 1.0));
        assert_eq!(r.max(), Point::new(5.0, 7.0));
    }

    #[test]
    fn centered_has_expected_extent() {
        let r = Rect::centered(Point::new(10.0, 10.0), 4.0, 6.0);
        assert_eq!(r.min(), Point::new(8.0, 7.0));
        assert_eq!(r.max(), Point::new(12.0, 13.0));
    }

    #[test]
    fn contains_boundary_points() {
        let r = unit();
        assert!(r.contains(Point::new(0.0, 0.0)));
        assert!(r.contains(Point::new(1.0, 1.0)));
        assert!(r.contains(Point::new(0.5, 0.5)));
        assert!(!r.contains(Point::new(1.0001, 0.5)));
    }

    #[test]
    fn intersects_overlapping_and_touching() {
        let a = unit();
        let b = Rect::new(Point::new(0.5, 0.5), Point::new(2.0, 2.0)).unwrap();
        let c = Rect::new(Point::new(1.0, 0.0), Point::new(2.0, 1.0)).unwrap();
        let d = Rect::new(Point::new(5.0, 5.0), Point::new(6.0, 6.0)).unwrap();
        assert!(a.intersects(b));
        assert!(a.intersects(c)); // touching edges count
        assert!(!a.intersects(d));
    }

    #[test]
    fn clamp_point_projects_outside_points() {
        let r = unit();
        assert_eq!(r.clamp_point(Point::new(2.0, -1.0)), Point::new(1.0, 0.0));
        assert_eq!(r.clamp_point(Point::new(0.3, 0.4)), Point::new(0.3, 0.4));
    }

    #[test]
    fn bounding_box_of_points() {
        let r = Rect::bounding(vec![
            Point::new(1.0, 5.0),
            Point::new(-2.0, 3.0),
            Point::new(4.0, -1.0),
        ])
        .unwrap();
        assert_eq!(r.min(), Point::new(-2.0, -1.0));
        assert_eq!(r.max(), Point::new(4.0, 5.0));
    }

    #[test]
    fn bounding_of_empty_is_none() {
        assert!(Rect::bounding(Vec::new()).is_none());
    }

    #[test]
    fn inflate_and_deflate() {
        let r = unit().inflated(1.0);
        assert_eq!(r.min(), Point::new(-1.0, -1.0));
        assert_eq!(r.max(), Point::new(2.0, 2.0));
        let collapsed = unit().inflated(-5.0);
        assert_eq!(collapsed.area(), 0.0);
        assert_eq!(collapsed.center(), unit().center());
    }

    #[test]
    fn point_at_uv_spans_rect() {
        let r = Rect::new(Point::new(2.0, 4.0), Point::new(6.0, 8.0)).unwrap();
        assert_eq!(r.point_at_uv(0.0, 0.0), r.min());
        assert_eq!(r.point_at_uv(1.0, 1.0), r.max());
        assert_eq!(r.point_at_uv(0.5, 0.5), r.center());
    }

    #[test]
    fn corners_are_counter_clockwise() {
        let c = unit().corners();
        assert_eq!(c[0], Point::new(0.0, 0.0));
        assert_eq!(c[1], Point::new(1.0, 0.0));
        assert_eq!(c[2], Point::new(1.0, 1.0));
        assert_eq!(c[3], Point::new(0.0, 1.0));
    }
}
