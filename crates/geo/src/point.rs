use std::fmt;
use std::ops::{Add, AddAssign, Sub, SubAssign};

use serde::{Deserialize, Serialize};

use crate::{GeoError, Vec2};

/// A location in the plane, in metres.
///
/// `Point` is the coordinate type every mobigrid crate exchanges: mobile-node
/// positions, gateway sites, waypoints and estimated locations are all
/// `Point`s. Subtracting two points yields the displacement [`Vec2`] between
/// them; adding a `Vec2` to a point moves it.
///
/// # Examples
///
/// ```
/// use mobigrid_geo::Point;
///
/// let a = Point::new(0.0, 0.0);
/// let b = Point::new(3.0, 4.0);
/// assert_eq!(a.distance_to(b), 5.0);
/// assert_eq!(a.midpoint(b), Point::new(1.5, 2.0));
/// ```
#[derive(Debug, Clone, Copy, PartialEq, Default, Serialize, Deserialize)]
pub struct Point {
    /// Easting in metres.
    pub x: f64,
    /// Northing in metres.
    pub y: f64,
}

impl Point {
    /// The origin of the local coordinate frame.
    pub const ORIGIN: Point = Point { x: 0.0, y: 0.0 };

    /// Creates a point at `(x, y)` metres.
    #[must_use]
    pub const fn new(x: f64, y: f64) -> Self {
        Point { x, y }
    }

    /// Creates a point, rejecting NaN or infinite coordinates.
    ///
    /// # Errors
    ///
    /// Returns [`GeoError::NonFiniteCoordinate`] when either coordinate is
    /// NaN or infinite.
    ///
    /// # Examples
    ///
    /// ```
    /// # fn main() -> Result<(), mobigrid_geo::GeoError> {
    /// let p = mobigrid_geo::Point::try_new(1.0, 2.0)?;
    /// assert!(mobigrid_geo::Point::try_new(f64::NAN, 0.0).is_err());
    /// # Ok(())
    /// # }
    /// ```
    pub fn try_new(x: f64, y: f64) -> Result<Self, GeoError> {
        if x.is_finite() && y.is_finite() {
            Ok(Point { x, y })
        } else {
            Err(GeoError::NonFiniteCoordinate)
        }
    }

    /// Euclidean distance to `other`, in metres.
    #[must_use]
    pub fn distance_to(self, other: Point) -> f64 {
        (other - self).norm()
    }

    /// Squared Euclidean distance to `other`; avoids the square root when only
    /// comparisons are needed.
    #[must_use]
    pub fn distance_sq_to(self, other: Point) -> f64 {
        let d = other - self;
        d.dot(d)
    }

    /// The point halfway between `self` and `other`.
    #[must_use]
    pub fn midpoint(self, other: Point) -> Point {
        self.lerp(other, 0.5)
    }

    /// Linear interpolation: `t = 0` yields `self`, `t = 1` yields `other`.
    ///
    /// Values of `t` outside `[0, 1]` extrapolate along the same line.
    #[must_use]
    pub fn lerp(self, other: Point, t: f64) -> Point {
        Point {
            x: self.x + (other.x - self.x) * t,
            y: self.y + (other.y - self.y) * t,
        }
    }

    /// Returns the displacement vector from `self` to `other`.
    #[must_use]
    pub fn vector_to(self, other: Point) -> Vec2 {
        other - self
    }

    /// Returns `true` when both coordinates are finite numbers.
    #[must_use]
    pub fn is_finite(self) -> bool {
        self.x.is_finite() && self.y.is_finite()
    }
}

impl fmt::Display for Point {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "({:.3}, {:.3})", self.x, self.y)
    }
}

impl From<(f64, f64)> for Point {
    fn from((x, y): (f64, f64)) -> Self {
        Point::new(x, y)
    }
}

impl From<Point> for (f64, f64) {
    fn from(p: Point) -> Self {
        (p.x, p.y)
    }
}

impl Add<Vec2> for Point {
    type Output = Point;

    fn add(self, rhs: Vec2) -> Point {
        Point::new(self.x + rhs.dx, self.y + rhs.dy)
    }
}

impl AddAssign<Vec2> for Point {
    fn add_assign(&mut self, rhs: Vec2) {
        self.x += rhs.dx;
        self.y += rhs.dy;
    }
}

impl Sub<Vec2> for Point {
    type Output = Point;

    fn sub(self, rhs: Vec2) -> Point {
        Point::new(self.x - rhs.dx, self.y - rhs.dy)
    }
}

impl SubAssign<Vec2> for Point {
    fn sub_assign(&mut self, rhs: Vec2) {
        self.x -= rhs.dx;
        self.y -= rhs.dy;
    }
}

impl Sub for Point {
    type Output = Vec2;

    fn sub(self, rhs: Point) -> Vec2 {
        Vec2::new(self.x - rhs.x, self.y - rhs.y)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn distance_is_symmetric() {
        let a = Point::new(1.0, 2.0);
        let b = Point::new(-3.0, 5.0);
        assert!((a.distance_to(b) - b.distance_to(a)).abs() < 1e-12);
    }

    #[test]
    fn distance_of_345_triangle() {
        assert_eq!(Point::ORIGIN.distance_to(Point::new(3.0, 4.0)), 5.0);
    }

    #[test]
    fn distance_sq_matches_distance() {
        let a = Point::new(2.0, -7.0);
        let b = Point::new(9.0, 1.5);
        assert!((a.distance_sq_to(b) - a.distance_to(b).powi(2)).abs() < 1e-9);
    }

    #[test]
    fn midpoint_is_halfway() {
        let m = Point::new(0.0, 0.0).midpoint(Point::new(10.0, 20.0));
        assert_eq!(m, Point::new(5.0, 10.0));
    }

    #[test]
    fn lerp_endpoints() {
        let a = Point::new(1.0, 1.0);
        let b = Point::new(4.0, 9.0);
        assert_eq!(a.lerp(b, 0.0), a);
        assert_eq!(a.lerp(b, 1.0), b);
    }

    #[test]
    fn lerp_extrapolates() {
        let a = Point::new(0.0, 0.0);
        let b = Point::new(1.0, 0.0);
        assert_eq!(a.lerp(b, 2.0), Point::new(2.0, 0.0));
    }

    #[test]
    fn add_sub_vec_round_trips() {
        let p = Point::new(5.0, -2.0);
        let v = Vec2::new(1.25, 3.5);
        assert_eq!((p + v) - v, p);
    }

    #[test]
    fn point_difference_is_displacement() {
        let a = Point::new(1.0, 1.0);
        let b = Point::new(4.0, 5.0);
        assert_eq!(b - a, Vec2::new(3.0, 4.0));
    }

    #[test]
    fn try_new_rejects_nan_and_infinity() {
        assert!(Point::try_new(f64::NAN, 0.0).is_err());
        assert!(Point::try_new(0.0, f64::INFINITY).is_err());
        assert!(Point::try_new(0.0, 0.0).is_ok());
    }

    #[test]
    fn conversion_round_trips_through_tuple() {
        let p = Point::new(2.5, -1.5);
        let t: (f64, f64) = p.into();
        assert_eq!(Point::from(t), p);
    }

    #[test]
    fn display_shows_both_coordinates() {
        assert_eq!(Point::new(1.0, 2.0).to_string(), "(1.000, 2.000)");
    }
}
