use serde::{Deserialize, Serialize};

use crate::{GeoError, Point, Rect, Segment};

/// A simple polygon with containment, area and centroid queries.
///
/// Most campus regions are rectangles, but irregular region shapes (e.g. an
/// L-shaped building or a triangular plaza) use `Polygon`. Containment uses
/// the even–odd ray-casting rule, which is robust for the simple,
/// non-self-intersecting shapes the campus model produces.
///
/// # Examples
///
/// ```
/// # fn main() -> Result<(), mobigrid_geo::GeoError> {
/// use mobigrid_geo::{Point, Polygon};
///
/// let triangle = Polygon::new(vec![
///     Point::new(0.0, 0.0),
///     Point::new(4.0, 0.0),
///     Point::new(0.0, 4.0),
/// ])?;
/// assert!(triangle.contains(Point::new(1.0, 1.0)));
/// assert_eq!(triangle.area(), 8.0);
/// # Ok(())
/// # }
/// ```
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct Polygon {
    vertices: Vec<Point>,
}

impl Polygon {
    /// Creates a polygon from its boundary vertices in order (either
    /// winding). The boundary is implicitly closed.
    ///
    /// # Errors
    ///
    /// Returns [`GeoError::PolygonTooSmall`] for fewer than three vertices
    /// and [`GeoError::NonFiniteCoordinate`] for NaN/infinite vertices.
    pub fn new(vertices: Vec<Point>) -> Result<Self, GeoError> {
        if vertices.len() < 3 {
            return Err(GeoError::PolygonTooSmall {
                got: vertices.len(),
            });
        }
        if vertices.iter().any(|v| !v.is_finite()) {
            return Err(GeoError::NonFiniteCoordinate);
        }
        Ok(Polygon { vertices })
    }

    /// Builds the polygon equivalent of a rectangle.
    #[must_use]
    pub fn from_rect(rect: Rect) -> Self {
        Polygon {
            vertices: rect.corners().to_vec(),
        }
    }

    /// The boundary vertices.
    #[must_use]
    pub fn vertices(&self) -> &[Point] {
        &self.vertices
    }

    /// Iterates over the boundary edges, including the closing edge.
    pub fn edges(&self) -> impl Iterator<Item = Segment> + '_ {
        let n = self.vertices.len();
        (0..n).map(move |i| Segment::new(self.vertices[i], self.vertices[(i + 1) % n]))
    }

    /// Even–odd (ray casting) containment test. Points exactly on a boundary
    /// edge count as inside.
    #[must_use]
    pub fn contains(&self, p: Point) -> bool {
        // Boundary points first: ray casting is unreliable exactly on edges.
        for e in self.edges() {
            if e.distance_to_point(p) <= crate::EPSILON {
                return true;
            }
        }
        let mut inside = false;
        let n = self.vertices.len();
        let mut j = n - 1;
        for i in 0..n {
            let vi = self.vertices[i];
            let vj = self.vertices[j];
            if ((vi.y > p.y) != (vj.y > p.y))
                && (p.x < (vj.x - vi.x) * (p.y - vi.y) / (vj.y - vi.y) + vi.x)
            {
                inside = !inside;
            }
            j = i;
        }
        inside
    }

    /// Unsigned area by the shoelace formula.
    #[must_use]
    pub fn area(&self) -> f64 {
        self.signed_area().abs()
    }

    /// Signed area: positive for counter-clockwise winding.
    #[must_use]
    pub fn signed_area(&self) -> f64 {
        let n = self.vertices.len();
        let mut sum = 0.0;
        for i in 0..n {
            let a = self.vertices[i];
            let b = self.vertices[(i + 1) % n];
            sum += a.x * b.y - b.x * a.y;
        }
        sum / 2.0
    }

    /// Area centroid of the polygon.
    ///
    /// Degenerate (zero-area) polygons fall back to the vertex average.
    #[must_use]
    pub fn centroid(&self) -> Point {
        let a = self.signed_area();
        if a.abs() <= crate::EPSILON {
            let n = self.vertices.len() as f64;
            let (sx, sy) = self
                .vertices
                .iter()
                .fold((0.0, 0.0), |(sx, sy), v| (sx + v.x, sy + v.y));
            return Point::new(sx / n, sy / n);
        }
        let n = self.vertices.len();
        let (mut cx, mut cy) = (0.0, 0.0);
        for i in 0..n {
            let p = self.vertices[i];
            let q = self.vertices[(i + 1) % n];
            let w = p.x * q.y - q.x * p.y;
            cx += (p.x + q.x) * w;
            cy += (p.y + q.y) * w;
        }
        Point::new(cx / (6.0 * a), cy / (6.0 * a))
    }

    /// Axis-aligned bounding box of the polygon.
    #[must_use]
    pub fn bounding_box(&self) -> Rect {
        Rect::bounding(self.vertices.iter().copied()).expect("polygon has >= 3 vertices")
    }

    /// Perimeter length, including the closing edge.
    #[must_use]
    pub fn perimeter(&self) -> f64 {
        self.edges().map(|e| e.length()).sum()
    }
}

impl From<Rect> for Polygon {
    fn from(rect: Rect) -> Self {
        Polygon::from_rect(rect)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn square() -> Polygon {
        Polygon::new(vec![
            Point::new(0.0, 0.0),
            Point::new(2.0, 0.0),
            Point::new(2.0, 2.0),
            Point::new(0.0, 2.0),
        ])
        .unwrap()
    }

    fn ell_shape() -> Polygon {
        // An L: 2x2 square with the top-right 1x1 notch removed.
        Polygon::new(vec![
            Point::new(0.0, 0.0),
            Point::new(2.0, 0.0),
            Point::new(2.0, 1.0),
            Point::new(1.0, 1.0),
            Point::new(1.0, 2.0),
            Point::new(0.0, 2.0),
        ])
        .unwrap()
    }

    #[test]
    fn rejects_too_few_vertices() {
        let r = Polygon::new(vec![Point::ORIGIN, Point::new(1.0, 0.0)]);
        assert_eq!(r, Err(GeoError::PolygonTooSmall { got: 2 }));
    }

    #[test]
    fn square_area_and_perimeter() {
        let s = square();
        assert_eq!(s.area(), 4.0);
        assert_eq!(s.perimeter(), 8.0);
    }

    #[test]
    fn ccw_winding_gives_positive_signed_area() {
        assert!(square().signed_area() > 0.0);
    }

    #[test]
    fn containment_interior_exterior_boundary() {
        let s = square();
        assert!(s.contains(Point::new(1.0, 1.0)));
        assert!(!s.contains(Point::new(3.0, 1.0)));
        assert!(s.contains(Point::new(0.0, 1.0))); // boundary counts
        assert!(s.contains(Point::new(2.0, 2.0))); // corner counts
    }

    #[test]
    fn l_shape_containment_respects_notch() {
        let l = ell_shape();
        assert!(l.contains(Point::new(0.5, 1.5)));
        assert!(l.contains(Point::new(1.5, 0.5)));
        assert!(!l.contains(Point::new(1.5, 1.5))); // in the notch
    }

    #[test]
    fn l_shape_area() {
        assert!((ell_shape().area() - 3.0).abs() < 1e-12);
    }

    #[test]
    fn centroid_of_square_is_center() {
        let c = square().centroid();
        assert!((c.x - 1.0).abs() < 1e-12);
        assert!((c.y - 1.0).abs() < 1e-12);
    }

    #[test]
    fn centroid_is_winding_independent() {
        let mut v = square().vertices().to_vec();
        v.reverse();
        let cw = Polygon::new(v).unwrap();
        let c = cw.centroid();
        assert!((c.x - 1.0).abs() < 1e-12);
        assert!((c.y - 1.0).abs() < 1e-12);
    }

    #[test]
    fn degenerate_polygon_centroid_falls_back_to_vertex_mean() {
        let line = Polygon::new(vec![
            Point::new(0.0, 0.0),
            Point::new(1.0, 0.0),
            Point::new(2.0, 0.0),
        ])
        .unwrap();
        assert_eq!(line.centroid(), Point::new(1.0, 0.0));
    }

    #[test]
    fn from_rect_matches_rect_queries() {
        let r = Rect::new(Point::new(1.0, 1.0), Point::new(4.0, 3.0)).unwrap();
        let p = Polygon::from_rect(r);
        assert_eq!(p.area(), r.area());
        assert_eq!(p.bounding_box(), r);
        assert!(p.contains(r.center()));
    }

    #[test]
    fn edges_count_matches_vertices() {
        assert_eq!(square().edges().count(), 4);
        assert_eq!(ell_shape().edges().count(), 6);
    }
}
