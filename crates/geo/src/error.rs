use std::error::Error;
use std::fmt;

/// Errors produced when constructing geometric values from invalid input.
#[derive(Debug, Clone, PartialEq, Eq)]
#[non_exhaustive]
pub enum GeoError {
    /// A polyline needs at least two vertices to describe a path.
    PolylineTooShort {
        /// Number of vertices that were supplied.
        got: usize,
    },
    /// A polygon needs at least three vertices to enclose area.
    PolygonTooSmall {
        /// Number of vertices that were supplied.
        got: usize,
    },
    /// A coordinate was NaN or infinite.
    NonFiniteCoordinate,
    /// A rectangle was given a min corner that exceeds its max corner.
    InvertedRect,
}

impl fmt::Display for GeoError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            GeoError::PolylineTooShort { got } => {
                write!(f, "polyline requires at least 2 vertices, got {got}")
            }
            GeoError::PolygonTooSmall { got } => {
                write!(f, "polygon requires at least 3 vertices, got {got}")
            }
            GeoError::NonFiniteCoordinate => write!(f, "coordinate was NaN or infinite"),
            GeoError::InvertedRect => write!(f, "rectangle min corner exceeds max corner"),
        }
    }
}

impl Error for GeoError {}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn display_is_lowercase_and_concise() {
        let msg = GeoError::PolylineTooShort { got: 1 }.to_string();
        assert_eq!(msg, "polyline requires at least 2 vertices, got 1");
    }

    #[test]
    fn error_is_send_and_sync() {
        fn assert_send_sync<T: Send + Sync>() {}
        assert_send_sync::<GeoError>();
    }
}
