use serde::{Deserialize, Serialize};

use crate::{GeoError, Point, Segment};

/// A multi-leg path through the plane with arc-length parametrisation.
///
/// Campus roads and the routes produced by the waypoint router are polylines.
/// The linear-movement mobility model advances a node a fixed number of metres
/// per tick along a polyline via [`Polyline::point_at_distance`], which is why
/// the cumulative leg lengths are precomputed at construction.
///
/// # Examples
///
/// ```
/// # fn main() -> Result<(), mobigrid_geo::GeoError> {
/// use mobigrid_geo::{Point, Polyline};
///
/// let path = Polyline::new(vec![
///     Point::new(0.0, 0.0),
///     Point::new(10.0, 0.0),
///     Point::new(10.0, 5.0),
/// ])?;
/// assert_eq!(path.length(), 15.0);
/// assert_eq!(path.point_at_distance(12.0), Point::new(10.0, 2.0));
/// # Ok(())
/// # }
/// ```
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct Polyline {
    vertices: Vec<Point>,
    /// `cumulative[i]` is the arc length from the start to `vertices[i]`.
    cumulative: Vec<f64>,
}

impl Polyline {
    /// Creates a polyline through `vertices` in order.
    ///
    /// # Errors
    ///
    /// Returns [`GeoError::PolylineTooShort`] when fewer than two vertices are
    /// supplied, and [`GeoError::NonFiniteCoordinate`] when any coordinate is
    /// NaN or infinite.
    pub fn new(vertices: Vec<Point>) -> Result<Self, GeoError> {
        if vertices.len() < 2 {
            return Err(GeoError::PolylineTooShort {
                got: vertices.len(),
            });
        }
        if vertices.iter().any(|v| !v.is_finite()) {
            return Err(GeoError::NonFiniteCoordinate);
        }
        let mut cumulative = Vec::with_capacity(vertices.len());
        let mut total = 0.0;
        cumulative.push(0.0);
        for pair in vertices.windows(2) {
            total += pair[0].distance_to(pair[1]);
            cumulative.push(total);
        }
        Ok(Polyline {
            vertices,
            cumulative,
        })
    }

    /// The vertices of the polyline, in travel order.
    #[must_use]
    pub fn vertices(&self) -> &[Point] {
        &self.vertices
    }

    /// Total arc length in metres.
    #[must_use]
    pub fn length(&self) -> f64 {
        *self.cumulative.last().expect("polyline has >= 2 vertices")
    }

    /// First vertex.
    #[must_use]
    pub fn start(&self) -> Point {
        self.vertices[0]
    }

    /// Last vertex.
    #[must_use]
    pub fn end(&self) -> Point {
        *self.vertices.last().expect("polyline has >= 2 vertices")
    }

    /// Iterates over the straight legs of the path.
    pub fn segments(&self) -> impl Iterator<Item = Segment> + '_ {
        self.vertices.windows(2).map(|w| Segment::new(w[0], w[1]))
    }

    /// The point `s` metres along the path from the start, clamped to the
    /// endpoints.
    #[must_use]
    pub fn point_at_distance(&self, s: f64) -> Point {
        if s <= 0.0 {
            return self.start();
        }
        let total = self.length();
        if s >= total {
            return self.end();
        }
        // Binary search for the leg containing arc length s.
        let idx = match self
            .cumulative
            .binary_search_by(|c| c.partial_cmp(&s).expect("finite arc lengths"))
        {
            Ok(i) => i,
            Err(i) => i - 1,
        };
        let leg = Segment::new(self.vertices[idx], self.vertices[idx + 1]);
        leg.point_at_distance(s - self.cumulative[idx])
    }

    /// Shortest distance from `p` to any point on the path.
    #[must_use]
    pub fn distance_to_point(&self, p: Point) -> f64 {
        self.segments()
            .map(|seg| seg.distance_to_point(p))
            .fold(f64::INFINITY, f64::min)
    }

    /// Arc length of the point on the path closest to `p`.
    #[must_use]
    pub fn project(&self, p: Point) -> f64 {
        let mut best = (f64::INFINITY, 0.0);
        for (i, seg) in self.segments().enumerate() {
            let t = seg.project(p);
            let q = seg.point_at(t);
            let d = q.distance_to(p);
            if d < best.0 {
                best = (d, self.cumulative[i] + t * seg.length());
            }
        }
        best.1
    }

    /// A polyline that travels the same path in reverse.
    #[must_use]
    pub fn reversed(&self) -> Polyline {
        let mut v = self.vertices.clone();
        v.reverse();
        Polyline::new(v).expect("reversal preserves validity")
    }

    /// Concatenates another polyline onto the end of this one.
    ///
    /// If the end of `self` coincides with the start of `other` the duplicate
    /// vertex is dropped.
    #[must_use]
    pub fn join(&self, other: &Polyline) -> Polyline {
        let mut v = self.vertices.clone();
        let skip_first = self.end().distance_to(other.start()) <= crate::EPSILON;
        let tail = if skip_first {
            &other.vertices[1..]
        } else {
            &other.vertices[..]
        };
        v.extend_from_slice(tail);
        Polyline::new(v).expect("join of valid polylines is valid")
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn ell() -> Polyline {
        Polyline::new(vec![
            Point::new(0.0, 0.0),
            Point::new(10.0, 0.0),
            Point::new(10.0, 5.0),
        ])
        .unwrap()
    }

    #[test]
    fn rejects_too_few_vertices() {
        assert_eq!(
            Polyline::new(vec![Point::ORIGIN]),
            Err(GeoError::PolylineTooShort { got: 1 })
        );
    }

    #[test]
    fn rejects_non_finite_vertices() {
        let r = Polyline::new(vec![Point::ORIGIN, Point::new(f64::NAN, 0.0)]);
        assert_eq!(r, Err(GeoError::NonFiniteCoordinate));
    }

    #[test]
    fn length_sums_legs() {
        assert_eq!(ell().length(), 15.0);
    }

    #[test]
    fn point_at_distance_walks_each_leg() {
        let p = ell();
        assert_eq!(p.point_at_distance(0.0), Point::new(0.0, 0.0));
        assert_eq!(p.point_at_distance(5.0), Point::new(5.0, 0.0));
        assert_eq!(p.point_at_distance(10.0), Point::new(10.0, 0.0));
        assert_eq!(p.point_at_distance(12.5), Point::new(10.0, 2.5));
        assert_eq!(p.point_at_distance(15.0), Point::new(10.0, 5.0));
    }

    #[test]
    fn point_at_distance_clamps_out_of_range() {
        let p = ell();
        assert_eq!(p.point_at_distance(-1.0), p.start());
        assert_eq!(p.point_at_distance(99.0), p.end());
    }

    #[test]
    fn distance_to_point_picks_nearest_leg() {
        let p = ell();
        assert_eq!(p.distance_to_point(Point::new(5.0, 2.0)), 2.0);
        assert_eq!(p.distance_to_point(Point::new(12.0, 2.5)), 2.0);
    }

    #[test]
    fn project_returns_arc_length_of_nearest_point() {
        let p = ell();
        assert_eq!(p.project(Point::new(5.0, 1.0)), 5.0);
        assert_eq!(p.project(Point::new(11.0, 2.5)), 12.5);
    }

    #[test]
    fn reversed_traverses_backwards() {
        let p = ell();
        let r = p.reversed();
        assert_eq!(r.start(), p.end());
        assert_eq!(r.end(), p.start());
        assert_eq!(r.length(), p.length());
        assert_eq!(r.point_at_distance(2.5), Point::new(10.0, 2.5));
    }

    #[test]
    fn join_merges_shared_vertex() {
        let a = Polyline::new(vec![Point::new(0.0, 0.0), Point::new(1.0, 0.0)]).unwrap();
        let b = Polyline::new(vec![Point::new(1.0, 0.0), Point::new(1.0, 1.0)]).unwrap();
        let j = a.join(&b);
        assert_eq!(j.vertices().len(), 3);
        assert_eq!(j.length(), 2.0);
    }

    #[test]
    fn join_keeps_disjoint_vertices() {
        let a = Polyline::new(vec![Point::new(0.0, 0.0), Point::new(1.0, 0.0)]).unwrap();
        let b = Polyline::new(vec![Point::new(2.0, 0.0), Point::new(3.0, 0.0)]).unwrap();
        let j = a.join(&b);
        assert_eq!(j.vertices().len(), 4);
        assert_eq!(j.length(), 3.0);
    }

    #[test]
    fn segments_iterator_yields_each_leg() {
        let segs: Vec<Segment> = ell().segments().collect();
        assert_eq!(segs.len(), 2);
        assert_eq!(segs[0].length(), 10.0);
        assert_eq!(segs[1].length(), 5.0);
    }
}
