use std::f64::consts::{PI, TAU};
use std::fmt;

use serde::{Deserialize, Serialize};

use crate::Vec2;

/// A direction of travel, normalised to `[0, 2π)` radians.
///
/// The mobility-pattern classifier in the paper distinguishes *linear
/// movement* from *random movement* by asking whether a node's direction is
/// "constant" or "changes frequently" — which requires comparing angles with
/// correct wrap-around (359° and 1° are 2° apart, not 358°). `Heading`
/// encapsulates that arithmetic.
///
/// Angles are measured counter-clockwise from the positive x axis, in
/// radians.
///
/// # Examples
///
/// ```
/// use mobigrid_geo::Heading;
///
/// let a = Heading::from_degrees(359.0);
/// let b = Heading::from_degrees(1.0);
/// assert!((a.angle_to(b).to_degrees() - 2.0).abs() < 1e-9);
/// ```
#[derive(Debug, Clone, Copy, PartialEq, Default, Serialize, Deserialize)]
pub struct Heading {
    radians: f64,
}

impl Heading {
    /// Heading along the positive x axis (east).
    pub const EAST: Heading = Heading { radians: 0.0 };

    /// Creates a heading from an angle in radians; any finite value is
    /// normalised into `[0, 2π)`.
    #[must_use]
    pub fn from_radians(radians: f64) -> Self {
        Heading {
            radians: normalize_radians(radians),
        }
    }

    /// Creates a heading from an angle in degrees.
    #[must_use]
    pub fn from_degrees(degrees: f64) -> Self {
        Heading::from_radians(degrees.to_radians())
    }

    /// Heading along the positive y axis (north).
    #[must_use]
    pub fn north() -> Self {
        Heading::from_radians(PI / 2.0)
    }

    /// Heading along the negative x axis (west).
    #[must_use]
    pub fn west() -> Self {
        Heading::from_radians(PI)
    }

    /// Heading along the negative y axis (south).
    #[must_use]
    pub fn south() -> Self {
        Heading::from_radians(3.0 * PI / 2.0)
    }

    /// The angle in radians, guaranteed to lie in `[0, 2π)`.
    #[must_use]
    pub fn radians(self) -> f64 {
        self.radians
    }

    /// The angle in degrees, in `[0, 360)`.
    #[must_use]
    pub fn degrees(self) -> f64 {
        self.radians.to_degrees()
    }

    /// The signed shortest rotation from `self` to `other`, in `(-π, π]`.
    ///
    /// Positive values are counter-clockwise turns.
    #[must_use]
    pub fn signed_angle_to(self, other: Heading) -> f64 {
        let mut diff = other.radians - self.radians;
        while diff > PI {
            diff -= TAU;
        }
        while diff <= -PI {
            diff += TAU;
        }
        diff
    }

    /// The magnitude of the shortest rotation between two headings, in
    /// `[0, π]` radians.
    #[must_use]
    pub fn angle_to(self, other: Heading) -> f64 {
        self.signed_angle_to(other).abs()
    }

    /// Rotates the heading counter-clockwise by `delta` radians.
    #[must_use]
    pub fn rotated(self, delta: f64) -> Heading {
        Heading::from_radians(self.radians + delta)
    }

    /// The opposite direction.
    #[must_use]
    pub fn reversed(self) -> Heading {
        self.rotated(PI)
    }

    /// The unit displacement vector pointing along this heading.
    #[must_use]
    pub fn unit_vector(self) -> Vec2 {
        Vec2::from_polar(1.0, self)
    }
}

impl fmt::Display for Heading {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{:.1}°", self.degrees())
    }
}

/// Normalises any finite angle in radians into `[0, 2π)`.
///
/// # Examples
///
/// ```
/// use std::f64::consts::TAU;
/// let a = mobigrid_geo::normalize_radians(-0.5);
/// assert!((a - (TAU - 0.5)).abs() < 1e-12);
/// ```
#[must_use]
pub fn normalize_radians(radians: f64) -> f64 {
    let r = radians.rem_euclid(TAU);
    // rem_euclid can return TAU itself for tiny negative inputs due to
    // rounding; fold that back to zero so the invariant r < TAU holds.
    if r >= TAU {
        0.0
    } else {
        r
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::f64::consts::FRAC_PI_2;

    #[test]
    fn normalisation_wraps_negative_angles() {
        let h = Heading::from_radians(-FRAC_PI_2);
        assert!((h.radians() - 3.0 * FRAC_PI_2).abs() < 1e-12);
    }

    #[test]
    fn normalisation_wraps_large_angles() {
        let h = Heading::from_radians(5.0 * TAU + 1.0);
        assert!((h.radians() - 1.0).abs() < 1e-12);
    }

    #[test]
    fn angle_across_the_wrap_is_short() {
        let a = Heading::from_degrees(350.0);
        let b = Heading::from_degrees(10.0);
        assert!((a.angle_to(b).to_degrees() - 20.0).abs() < 1e-9);
    }

    #[test]
    fn signed_angle_direction() {
        let east = Heading::EAST;
        let north = Heading::north();
        assert!(east.signed_angle_to(north) > 0.0);
        assert!(north.signed_angle_to(east) < 0.0);
    }

    #[test]
    fn signed_angle_of_opposite_is_pi() {
        let a = Heading::EAST;
        assert!((a.signed_angle_to(a.reversed()) - PI).abs() < 1e-12);
    }

    #[test]
    fn reversed_twice_is_identity() {
        let h = Heading::from_degrees(123.0);
        let rr = h.reversed().reversed();
        assert!((rr.radians() - h.radians()).abs() < 1e-9);
    }

    #[test]
    fn unit_vector_has_unit_norm() {
        for deg in [0.0, 45.0, 137.0, 278.5] {
            let v = Heading::from_degrees(deg).unit_vector();
            assert!((v.norm() - 1.0).abs() < 1e-12);
        }
    }

    #[test]
    fn compass_constructors() {
        assert!((Heading::north().degrees() - 90.0).abs() < 1e-9);
        assert!((Heading::west().degrees() - 180.0).abs() < 1e-9);
        assert!((Heading::south().degrees() - 270.0).abs() < 1e-9);
    }

    #[test]
    fn display_in_degrees() {
        assert_eq!(Heading::from_degrees(90.0).to_string(), "90.0°");
    }
}
