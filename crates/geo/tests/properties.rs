//! Property-based tests for the geometry substrate.

use mobigrid_geo::{Heading, Point, Polygon, Polyline, Rect, Segment, Vec2};
use proptest::prelude::*;

const COORD: std::ops::Range<f64> = -1.0e4..1.0e4;

fn point() -> impl Strategy<Value = Point> {
    (COORD, COORD).prop_map(|(x, y)| Point::new(x, y))
}

fn vec2() -> impl Strategy<Value = Vec2> {
    (COORD, COORD).prop_map(|(dx, dy)| Vec2::new(dx, dy))
}

proptest! {
    #[test]
    fn distance_satisfies_triangle_inequality(a in point(), b in point(), c in point()) {
        let direct = a.distance_to(c);
        let detour = a.distance_to(b) + b.distance_to(c);
        prop_assert!(direct <= detour + 1e-6);
    }

    #[test]
    fn distance_is_translation_invariant(a in point(), b in point(), t in vec2()) {
        let before = a.distance_to(b);
        let after = (a + t).distance_to(b + t);
        prop_assert!((before - after).abs() < 1e-6);
    }

    #[test]
    fn heading_round_trips_through_vector(deg in 0.0..360.0f64, mag in 0.001..1.0e4f64) {
        let h = Heading::from_degrees(deg);
        let v = Vec2::from_polar(mag, h);
        let back = v.heading().unwrap();
        prop_assert!(h.angle_to(back) < 1e-9);
        prop_assert!((v.norm() - mag).abs() < 1e-6 * mag.max(1.0));
    }

    #[test]
    fn heading_angle_is_symmetric_and_bounded(a in 0.0..360.0f64, b in 0.0..360.0f64) {
        let ha = Heading::from_degrees(a);
        let hb = Heading::from_degrees(b);
        prop_assert!((ha.angle_to(hb) - hb.angle_to(ha)).abs() < 1e-12);
        prop_assert!(ha.angle_to(hb) <= std::f64::consts::PI + 1e-12);
    }

    #[test]
    fn rotation_preserves_norm(v in vec2(), angle in -10.0..10.0f64) {
        prop_assert!((v.rotated(angle).norm() - v.norm()).abs() < 1e-6);
    }

    #[test]
    fn segment_closest_point_is_no_farther_than_endpoints(
        a in point(), b in point(), p in point()
    ) {
        let s = Segment::new(a, b);
        let d = s.distance_to_point(p);
        prop_assert!(d <= p.distance_to(a) + 1e-9);
        prop_assert!(d <= p.distance_to(b) + 1e-9);
    }

    #[test]
    fn polyline_arc_length_parametrisation_is_monotone(
        pts in prop::collection::vec((COORD, COORD), 2..8),
        s1 in 0.0..1.0f64,
        s2 in 0.0..1.0f64,
    ) {
        let pts: Vec<Point> = pts.into_iter().map(Point::from).collect();
        let pl = Polyline::new(pts).unwrap();
        let total = pl.length();
        let (lo, hi) = if s1 <= s2 { (s1, s2) } else { (s2, s1) };
        // Walking further along the path never moves you backwards along it:
        // the projection of the reached point is within the travelled range.
        let p = pl.point_at_distance(hi * total);
        let proj = pl.project(p);
        prop_assert!(proj <= total + 1e-6);
        let q = pl.point_at_distance(lo * total);
        // Distance travelled between the two samples is at most the arc gap.
        prop_assert!(q.distance_to(p) <= (hi - lo) * total + 1e-6);
    }

    #[test]
    fn polyline_endpoint_clamping(pts in prop::collection::vec((COORD, COORD), 2..8)) {
        let pts: Vec<Point> = pts.into_iter().map(Point::from).collect();
        let pl = Polyline::new(pts).unwrap();
        prop_assert_eq!(pl.point_at_distance(-1.0), pl.start());
        prop_assert_eq!(pl.point_at_distance(pl.length() + 1.0), pl.end());
    }

    #[test]
    fn rect_clamped_points_are_contained(a in point(), b in point(), p in point()) {
        let r = Rect::from_corners(a, b);
        prop_assert!(r.contains(r.clamp_point(p)));
    }

    #[test]
    fn rect_uv_sampling_stays_inside(a in point(), b in point(), u in 0.0..1.0f64, v in 0.0..1.0f64) {
        let r = Rect::from_corners(a, b);
        prop_assert!(r.contains(r.point_at_uv(u, v)));
    }

    #[test]
    fn rect_polygon_containment_agrees(a in point(), b in point(), p in point()) {
        let r = Rect::from_corners(a, b);
        let poly = Polygon::from_rect(r);
        // Skip points razor-close to the boundary where the polygon's
        // epsilon-thick edge rule may differ from the rect's closed test.
        let on_edge = poly.edges().any(|e| e.distance_to_point(p) < 1e-6);
        if !on_edge {
            prop_assert_eq!(r.contains(p), poly.contains(p));
        }
    }

    #[test]
    fn polygon_centroid_lies_in_bounding_box(
        pts in prop::collection::vec((COORD, COORD), 3..8)
    ) {
        // The centroid containment guarantee only holds for simple polygons,
        // so order the random vertices by angle around their mean to produce
        // a star-shaped (hence simple) boundary.
        let mut pts: Vec<Point> = pts.into_iter().map(Point::from).collect();
        let n = pts.len() as f64;
        let (cx, cy) = pts.iter().fold((0.0, 0.0), |(x, y), p| (x + p.x, y + p.y));
        let (cx, cy) = (cx / n, cy / n);
        pts.sort_by(|a, b| {
            let aa = (a.y - cy).atan2(a.x - cx);
            let ab = (b.y - cy).atan2(b.x - cx);
            aa.partial_cmp(&ab).unwrap()
        });
        let poly = Polygon::new(pts).unwrap();
        prop_assert!(poly.bounding_box().inflated(1e-6).contains(poly.centroid()));
    }
}
