//! Offline stand-in for the `rand` crate (API-compatible subset).
//!
//! Deterministic, statistically-reasonable RNG built on SplitMix64. Only the
//! surface actually used by the mobigrid workspace is provided.
#![allow(clippy::all)]

pub mod distributions {
    use crate::RngCore;

    pub trait Distribution<T> {
        fn sample<R: RngCore + ?Sized>(&self, rng: &mut R) -> T;
    }

    /// The `Standard` distribution (uniform over the type's natural range).
    #[derive(Debug, Clone, Copy, Default)]
    pub struct Standard;

    impl Distribution<u8> for Standard {
        fn sample<R: RngCore + ?Sized>(&self, rng: &mut R) -> u8 {
            (rng.next_u32() >> 24) as u8
        }
    }
    impl Distribution<u32> for Standard {
        fn sample<R: RngCore + ?Sized>(&self, rng: &mut R) -> u32 {
            rng.next_u32()
        }
    }
    impl Distribution<u64> for Standard {
        fn sample<R: RngCore + ?Sized>(&self, rng: &mut R) -> u64 {
            rng.next_u64()
        }
    }
    impl Distribution<usize> for Standard {
        fn sample<R: RngCore + ?Sized>(&self, rng: &mut R) -> usize {
            rng.next_u64() as usize
        }
    }
    impl Distribution<bool> for Standard {
        fn sample<R: RngCore + ?Sized>(&self, rng: &mut R) -> bool {
            rng.next_u64() & 1 == 1
        }
    }
    impl Distribution<f64> for Standard {
        fn sample<R: RngCore + ?Sized>(&self, rng: &mut R) -> f64 {
            (rng.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
        }
    }
    impl Distribution<f32> for Standard {
        fn sample<R: RngCore + ?Sized>(&self, rng: &mut R) -> f32 {
            (rng.next_u32() >> 8) as f32 * (1.0 / (1u32 << 24) as f32)
        }
    }

    pub mod uniform {
        use crate::RngCore;

        /// Types that can be drawn uniformly from a range.
        pub trait SampleUniform: Sized + Copy + PartialOrd {
            fn sample_in<R: RngCore + ?Sized>(rng: &mut R, lo: Self, hi: Self, inclusive: bool)
                -> Self;
        }

        macro_rules! impl_int_uniform {
            ($($t:ty),*) => {$(
                impl SampleUniform for $t {
                    fn sample_in<R: RngCore + ?Sized>(
                        rng: &mut R,
                        lo: Self,
                        hi: Self,
                        inclusive: bool,
                    ) -> Self {
                        let span = if inclusive {
                            (hi as i128) - (lo as i128) + 1
                        } else {
                            (hi as i128) - (lo as i128)
                        };
                        assert!(span > 0, "empty range in gen_range");
                        let v = (rng.next_u64() as u128 % span as u128) as i128;
                        (lo as i128 + v) as $t
                    }
                }
            )*};
        }
        impl_int_uniform!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

        impl SampleUniform for f64 {
            fn sample_in<R: RngCore + ?Sized>(rng: &mut R, lo: Self, hi: Self, _inclusive: bool)
                -> Self {
                assert!(lo <= hi, "empty range in gen_range");
                let u = (rng.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64);
                lo + u * (hi - lo)
            }
        }
        impl SampleUniform for f32 {
            fn sample_in<R: RngCore + ?Sized>(rng: &mut R, lo: Self, hi: Self, _inclusive: bool)
                -> Self {
                assert!(lo <= hi, "empty range in gen_range");
                let u = (rng.next_u32() >> 8) as f32 * (1.0 / (1u32 << 24) as f32);
                lo + u * (hi - lo)
            }
        }

        /// Range-like arguments accepted by `Rng::gen_range`.
        pub trait SampleRange<T> {
            fn sample_from<R: RngCore + ?Sized>(self, rng: &mut R) -> T;
        }

        impl<T: SampleUniform> SampleRange<T> for core::ops::Range<T> {
            fn sample_from<R: RngCore + ?Sized>(self, rng: &mut R) -> T {
                T::sample_in(rng, self.start, self.end, false)
            }
        }
        impl<T: SampleUniform> SampleRange<T> for core::ops::RangeInclusive<T> {
            fn sample_from<R: RngCore + ?Sized>(self, rng: &mut R) -> T {
                T::sample_in(rng, *self.start(), *self.end(), true)
            }
        }
    }
}

pub use distributions::uniform::SampleRange;
use distributions::{Distribution, Standard};

/// Core RNG interface.
pub trait RngCore {
    fn next_u32(&mut self) -> u32;
    fn next_u64(&mut self) -> u64;
    fn fill_bytes(&mut self, dest: &mut [u8]);
}

impl<R: RngCore + ?Sized> RngCore for &mut R {
    fn next_u32(&mut self) -> u32 {
        (**self).next_u32()
    }
    fn next_u64(&mut self) -> u64 {
        (**self).next_u64()
    }
    fn fill_bytes(&mut self, dest: &mut [u8]) {
        (**self).fill_bytes(dest)
    }
}

impl RngCore for Box<dyn RngCore> {
    fn next_u32(&mut self) -> u32 {
        (**self).next_u32()
    }
    fn next_u64(&mut self) -> u64 {
        (**self).next_u64()
    }
    fn fill_bytes(&mut self, dest: &mut [u8]) {
        (**self).fill_bytes(dest)
    }
}

/// Convenience methods over [`RngCore`].
pub trait Rng: RngCore {
    fn gen<T>(&mut self) -> T
    where
        Standard: Distribution<T>,
    {
        Standard.sample(self)
    }

    fn gen_range<T, R>(&mut self, range: R) -> T
    where
        R: SampleRange<T>,
    {
        range.sample_from(self)
    }

    fn gen_bool(&mut self, p: f64) -> bool {
        let u: f64 = self.gen();
        u < p
    }
}

impl<R: RngCore + ?Sized> Rng for R {}

/// Seedable RNG construction.
pub trait SeedableRng: Sized {
    type Seed: Sized + Default + AsMut<[u8]>;

    fn from_seed(seed: Self::Seed) -> Self;

    fn seed_from_u64(mut state: u64) -> Self {
        let mut seed = Self::Seed::default();
        for chunk in seed.as_mut().chunks_mut(8) {
            state = state.wrapping_add(0x9E37_79B9_7F4A_7C15);
            let mut z = state;
            z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
            z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
            z ^= z >> 31;
            for (b, s) in chunk.iter_mut().zip(z.to_le_bytes()) {
                *b = s;
            }
        }
        Self::from_seed(seed)
    }

    fn from_entropy() -> Self {
        Self::seed_from_u64(0x5EED_5EED_5EED_5EED)
    }
}

fn splitmix_next(state: &mut u64) -> u64 {
    *state = state.wrapping_add(0x9E37_79B9_7F4A_7C15);
    let mut z = *state;
    z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
    z ^ (z >> 31)
}

pub mod rngs {
    use super::{splitmix_next, RngCore, SeedableRng};

    /// Stand-in for rand's ChaCha12-based `StdRng` (SplitMix64 here).
    #[derive(Debug, Clone, PartialEq, Eq)]
    pub struct StdRng {
        state: u64,
    }

    impl RngCore for StdRng {
        fn next_u32(&mut self) -> u32 {
            (splitmix_next(&mut self.state) >> 32) as u32
        }
        fn next_u64(&mut self) -> u64 {
            splitmix_next(&mut self.state)
        }
        fn fill_bytes(&mut self, dest: &mut [u8]) {
            for chunk in dest.chunks_mut(8) {
                let v = self.next_u64().to_le_bytes();
                for (b, s) in chunk.iter_mut().zip(v) {
                    *b = s;
                }
            }
        }
    }

    impl SeedableRng for StdRng {
        type Seed = [u8; 32];

        fn from_seed(seed: Self::Seed) -> Self {
            let mut state = 0u64;
            for chunk in seed.chunks(8) {
                let mut word = [0u8; 8];
                word[..chunk.len()].copy_from_slice(chunk);
                state ^= u64::from_le_bytes(word);
                state = state.rotate_left(17);
            }
            StdRng { state }
        }
    }

    pub mod mock {
        use crate::RngCore;

        /// A mock RNG yielding an arithmetic sequence.
        #[derive(Debug, Clone, PartialEq, Eq)]
        pub struct StepRng {
            value: u64,
            step: u64,
        }

        impl StepRng {
            pub fn new(initial: u64, step: u64) -> Self {
                StepRng {
                    value: initial,
                    step,
                }
            }
        }

        impl RngCore for StepRng {
            fn next_u32(&mut self) -> u32 {
                self.next_u64() as u32
            }
            fn next_u64(&mut self) -> u64 {
                let out = self.value;
                self.value = self.value.wrapping_add(self.step);
                out
            }
            fn fill_bytes(&mut self, dest: &mut [u8]) {
                for chunk in dest.chunks_mut(8) {
                    let v = self.next_u64().to_le_bytes();
                    for (b, s) in chunk.iter_mut().zip(v) {
                        *b = s;
                    }
                }
            }
        }
    }
}

pub mod seq {
    use crate::Rng;

    /// Slice shuffling/choosing helpers.
    pub trait SliceRandom {
        type Item;
        fn shuffle<R: Rng + ?Sized>(&mut self, rng: &mut R);
        fn choose<R: Rng + ?Sized>(&self, rng: &mut R) -> Option<&Self::Item>;
    }

    impl<T> SliceRandom for [T] {
        type Item = T;

        fn shuffle<R: Rng + ?Sized>(&mut self, rng: &mut R) {
            // Fisher–Yates.
            for i in (1..self.len()).rev() {
                let j = (rng.next_u64() % (i as u64 + 1)) as usize;
                self.swap(i, j);
            }
        }

        fn choose<R: Rng + ?Sized>(&self, rng: &mut R) -> Option<&T> {
            if self.is_empty() {
                None
            } else {
                let i = (rng.next_u64() % self.len() as u64) as usize;
                self.get(i)
            }
        }
    }
}

/// A lightweight `thread_rng` substitute (deterministic).
pub fn thread_rng() -> rngs::StdRng {
    <rngs::StdRng as SeedableRng>::seed_from_u64(0x7EAD_1234_5678_9ABC)
}
