//! Offline stand-in for `crossbeam` scoped threads, built on
//! `std::thread::scope` (fully functional).
#![allow(clippy::all)]

pub mod thread {
    use std::any::Any;

    pub type Result<T> = std::result::Result<T, Box<dyn Any + Send + 'static>>;

    /// Scope handle compatible with `crossbeam::thread::Scope` call sites.
    pub struct Scope<'scope, 'env: 'scope> {
        inner: &'scope std::thread::Scope<'scope, 'env>,
    }

    pub struct ScopedJoinHandle<'scope, T> {
        inner: std::thread::ScopedJoinHandle<'scope, T>,
    }

    impl<'scope, T> ScopedJoinHandle<'scope, T> {
        pub fn join(self) -> Result<T> {
            self.inner.join()
        }
    }

    impl<'scope, 'env> Scope<'scope, 'env> {
        pub fn spawn<F, T>(&self, f: F) -> ScopedJoinHandle<'scope, T>
        where
            F: FnOnce(&Scope<'scope, 'env>) -> T + Send + 'scope,
            T: Send + 'scope,
        {
            let inner = self.inner;
            ScopedJoinHandle {
                inner: inner.spawn(move || f(&Scope { inner })),
            }
        }
    }

    /// Runs `f` with a scope in which borrowed-data threads can be spawned.
    /// All threads are joined before `scope` returns.
    pub fn scope<'env, F, R>(f: F) -> Result<R>
    where
        F: for<'scope> FnOnce(&Scope<'scope, 'env>) -> R,
    {
        Ok(std::thread::scope(|s| f(&Scope { inner: s })))
    }
}

pub use thread::scope;
