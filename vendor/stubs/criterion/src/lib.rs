//! Offline stand-in for `criterion`: times each benchmark crudely with
//! `std::time::Instant` and prints ns/iter, so benches run without network.
#![allow(clippy::all)]

use std::time::Instant;

pub use std::hint::black_box;

#[derive(Debug, Clone, Copy)]
pub struct Criterion {
    sample_size: usize,
}

impl Default for Criterion {
    fn default() -> Self {
        Criterion { sample_size: 20 }
    }
}

impl Criterion {
    pub fn bench_function<F>(&mut self, name: &str, mut f: F) -> &mut Self
    where
        F: FnMut(&mut Bencher),
    {
        run_bench(name, self.sample_size, &mut f);
        self
    }

    pub fn benchmark_group(&mut self, name: &str) -> BenchmarkGroup {
        BenchmarkGroup {
            name: name.to_string(),
            sample_size: self.sample_size,
        }
    }

    pub fn sample_size(&mut self, n: usize) -> &mut Self {
        self.sample_size = n;
        self
    }
}

pub struct BenchmarkGroup {
    name: String,
    sample_size: usize,
}

impl BenchmarkGroup {
    pub fn sample_size(&mut self, n: usize) -> &mut Self {
        self.sample_size = n;
        self
    }

    pub fn bench_function<F>(&mut self, name: impl std::fmt::Display, mut f: F) -> &mut Self
    where
        F: FnMut(&mut Bencher),
    {
        run_bench(&format!("{}/{}", self.name, name), self.sample_size, &mut f);
        self
    }

    pub fn finish(self) {}
}

pub struct Bencher {
    iters: u64,
    elapsed_ns: u128,
}

impl Bencher {
    pub fn iter<O, F: FnMut() -> O>(&mut self, mut f: F) {
        let start = Instant::now();
        for _ in 0..self.iters {
            black_box(f());
        }
        self.elapsed_ns = start.elapsed().as_nanos();
    }
}

fn run_bench<F: FnMut(&mut Bencher)>(name: &str, samples: usize, f: &mut F) {
    // Warmup + calibration: find an iteration count that runs >= ~5 ms.
    let mut iters = 1u64;
    loop {
        let mut b = Bencher {
            iters,
            elapsed_ns: 0,
        };
        f(&mut b);
        if b.elapsed_ns >= 5_000_000 || iters >= 1 << 20 {
            break;
        }
        iters *= 4;
    }
    let mut best = u128::MAX;
    for _ in 0..samples.min(10) {
        let mut b = Bencher {
            iters,
            elapsed_ns: 0,
        };
        f(&mut b);
        let per_iter = b.elapsed_ns / u128::from(iters.max(1));
        best = best.min(per_iter);
    }
    println!("bench {name}: {best} ns/iter ({iters} iters/sample)");
}

/// Identifier helper used by parameterised benches.
pub struct BenchmarkId;

impl BenchmarkId {
    pub fn new(name: impl std::fmt::Display, param: impl std::fmt::Display) -> String {
        format!("{name}/{param}")
    }

    pub fn from_parameter(param: impl std::fmt::Display) -> String {
        format!("{param}")
    }
}

#[macro_export]
macro_rules! criterion_group {
    ($name:ident, $($target:path),+ $(,)?) => {
        pub fn $name() {
            let mut c = $crate::Criterion::default();
            $($target(&mut c);)+
        }
    };
}

#[macro_export]
macro_rules! criterion_main {
    ($($group:path),+ $(,)?) => {
        fn main() {
            $($group();)+
        }
    };
}
