//! Offline stand-in for `bytes` (functional subset).
#![allow(clippy::all)]

use std::sync::Arc;

/// Cheaply cloneable immutable byte buffer.
#[derive(Debug, Clone, Default)]
pub struct Bytes {
    data: Arc<Vec<u8>>,
    offset: usize,
}

impl Bytes {
    pub fn new() -> Self {
        Bytes::default()
    }

    pub fn copy_from_slice(data: &[u8]) -> Self {
        Bytes {
            data: Arc::new(data.to_vec()),
            offset: 0,
        }
    }

    pub fn len(&self) -> usize {
        self.data.len() - self.offset
    }

    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    pub fn as_slice(&self) -> &[u8] {
        &self.data[self.offset..]
    }

    pub fn to_vec(&self) -> Vec<u8> {
        self.as_slice().to_vec()
    }
}

impl From<Vec<u8>> for Bytes {
    fn from(v: Vec<u8>) -> Self {
        Bytes {
            data: Arc::new(v),
            offset: 0,
        }
    }
}

impl From<&'static [u8]> for Bytes {
    fn from(v: &'static [u8]) -> Self {
        Bytes::copy_from_slice(v)
    }
}

impl std::ops::Deref for Bytes {
    type Target = [u8];
    fn deref(&self) -> &[u8] {
        self.as_slice()
    }
}

impl AsRef<[u8]> for Bytes {
    fn as_ref(&self) -> &[u8] {
        self.as_slice()
    }
}

impl PartialEq for Bytes {
    fn eq(&self, other: &Self) -> bool {
        self.as_slice() == other.as_slice()
    }
}
impl Eq for Bytes {}

impl PartialEq<[u8]> for Bytes {
    fn eq(&self, other: &[u8]) -> bool {
        self.as_slice() == other
    }
}

impl<const N: usize> PartialEq<[u8; N]> for Bytes {
    fn eq(&self, other: &[u8; N]) -> bool {
        self.as_slice() == other
    }
}

impl std::hash::Hash for Bytes {
    fn hash<H: std::hash::Hasher>(&self, state: &mut H) {
        self.as_slice().hash(state)
    }
}

/// Growable byte buffer.
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct BytesMut {
    data: Vec<u8>,
}

impl BytesMut {
    pub fn new() -> Self {
        BytesMut::default()
    }

    pub fn with_capacity(cap: usize) -> Self {
        BytesMut {
            data: Vec::with_capacity(cap),
        }
    }

    pub fn freeze(self) -> Bytes {
        Bytes::from(self.data)
    }

    pub fn len(&self) -> usize {
        self.data.len()
    }

    pub fn is_empty(&self) -> bool {
        self.data.is_empty()
    }
}

impl std::ops::Deref for BytesMut {
    type Target = [u8];
    fn deref(&self) -> &[u8] {
        &self.data
    }
}

/// Read cursor over a byte source.
pub trait Buf {
    fn remaining(&self) -> usize;
    fn chunk(&self) -> &[u8];
    fn advance(&mut self, cnt: usize);

    fn has_remaining(&self) -> bool {
        self.remaining() > 0
    }

    fn copy_to_slice(&mut self, dst: &mut [u8]) {
        assert!(self.remaining() >= dst.len(), "buffer underflow");
        let n = dst.len();
        dst.copy_from_slice(&self.chunk()[..n]);
        self.advance(n);
    }

    fn get_u8(&mut self) -> u8 {
        let mut b = [0u8; 1];
        self.copy_to_slice(&mut b);
        b[0]
    }

    fn get_u16(&mut self) -> u16 {
        let mut b = [0u8; 2];
        self.copy_to_slice(&mut b);
        u16::from_be_bytes(b)
    }

    fn get_u32(&mut self) -> u32 {
        let mut b = [0u8; 4];
        self.copy_to_slice(&mut b);
        u32::from_be_bytes(b)
    }

    fn get_u64(&mut self) -> u64 {
        let mut b = [0u8; 8];
        self.copy_to_slice(&mut b);
        u64::from_be_bytes(b)
    }

    fn get_f64(&mut self) -> f64 {
        f64::from_bits(self.get_u64())
    }

    fn get_f32(&mut self) -> f32 {
        f32::from_bits(self.get_u32())
    }
}

impl Buf for &[u8] {
    fn remaining(&self) -> usize {
        self.len()
    }
    fn chunk(&self) -> &[u8] {
        self
    }
    fn advance(&mut self, cnt: usize) {
        *self = &self[cnt..];
    }
}

impl Buf for Bytes {
    fn remaining(&self) -> usize {
        self.len()
    }
    fn chunk(&self) -> &[u8] {
        self.as_slice()
    }
    fn advance(&mut self, cnt: usize) {
        assert!(cnt <= self.len(), "advance past end");
        self.offset += cnt;
    }
}

/// Write cursor into a growable byte sink.
pub trait BufMut {
    fn put_slice(&mut self, src: &[u8]);

    fn put_u8(&mut self, v: u8) {
        self.put_slice(&[v]);
    }
    fn put_u16(&mut self, v: u16) {
        self.put_slice(&v.to_be_bytes());
    }
    fn put_u32(&mut self, v: u32) {
        self.put_slice(&v.to_be_bytes());
    }
    fn put_u64(&mut self, v: u64) {
        self.put_slice(&v.to_be_bytes());
    }
    fn put_f64(&mut self, v: f64) {
        self.put_u64(v.to_bits());
    }
    fn put_f32(&mut self, v: f32) {
        self.put_u32(v.to_bits());
    }
}

impl BufMut for BytesMut {
    fn put_slice(&mut self, src: &[u8]) {
        self.data.extend_from_slice(src);
    }
}

impl BufMut for Vec<u8> {
    fn put_slice(&mut self, src: &[u8]) {
        self.extend_from_slice(src);
    }
}
