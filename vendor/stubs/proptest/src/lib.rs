//! Offline stand-in for `proptest`: a miniature, functional property-test
//! runner. The `proptest!` macro expands each property into a plain `#[test]`
//! that generates 32 deterministic pseudo-random cases per property and runs
//! the body with `prop_assert*` mapped onto `assert*`. No shrinking. The real
//! crate runs in CI; this stub exists so property tests still execute (not
//! just typecheck) without network access.
#![allow(clippy::all)]

pub mod test_runner {
    /// SplitMix64-based deterministic RNG for case generation.
    #[derive(Debug, Clone)]
    pub struct TestRng {
        state: u64,
    }

    impl TestRng {
        pub fn new(seed: u64) -> Self {
            TestRng { state: seed }
        }

        pub fn next_u64(&mut self) -> u64 {
            self.state = self.state.wrapping_add(0x9E37_79B9_7F4A_7C15);
            let mut z = self.state;
            z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
            z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
            z ^ (z >> 31)
        }

        /// Uniform in [0, 1).
        pub fn unit_f64(&mut self) -> f64 {
            (self.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
        }
    }

    /// FNV-1a over the test name so each property gets its own seed stream.
    pub fn seed_from_name(name: &str, case: u64) -> u64 {
        let mut h: u64 = 0xCBF2_9CE4_8422_2325;
        for b in name.as_bytes() {
            h ^= u64::from(*b);
            h = h.wrapping_mul(0x0000_0100_0000_01B3);
        }
        h ^ case.wrapping_mul(0x2545_F491_4F6C_DD1D)
    }
}

pub mod strategy {
    use crate::test_runner::TestRng;

    /// Minimal generation-only strategy: no shrinking, no value trees.
    pub trait Strategy {
        type Value;

        fn generate(&self, rng: &mut TestRng) -> Self::Value;

        fn prop_map<O, F>(self, f: F) -> Map<Self, F>
        where
            Self: Sized,
            F: Fn(Self::Value) -> O,
        {
            Map { source: self, f }
        }
    }

    /// Output of [`Strategy::prop_map`].
    #[derive(Debug, Clone)]
    pub struct Map<S, F> {
        source: S,
        f: F,
    }

    impl<S: Strategy, O, F: Fn(S::Value) -> O> Strategy for Map<S, F> {
        type Value = O;

        fn generate(&self, rng: &mut TestRng) -> O {
            (self.f)(self.source.generate(rng))
        }
    }

    /// Always-the-same-value strategy.
    #[derive(Debug, Clone, Copy)]
    pub struct Just<T>(pub T);

    impl<T: Clone> Strategy for Just<T> {
        type Value = T;

        fn generate(&self, _rng: &mut TestRng) -> T {
            self.0.clone()
        }
    }

    macro_rules! int_range_strategy {
        ($($t:ty),*) => {$(
            impl Strategy for core::ops::Range<$t> {
                type Value = $t;

                fn generate(&self, rng: &mut TestRng) -> $t {
                    assert!(self.start < self.end, "empty range strategy");
                    let span = (self.end as i128 - self.start as i128) as u128;
                    let off = (rng.next_u64() as u128) % span;
                    (self.start as i128 + off as i128) as $t
                }
            }

            impl Strategy for core::ops::RangeInclusive<$t> {
                type Value = $t;

                fn generate(&self, rng: &mut TestRng) -> $t {
                    let (lo, hi) = (*self.start(), *self.end());
                    assert!(lo <= hi, "empty range strategy");
                    let span = (hi as i128 - lo as i128) as u128 + 1;
                    let off = (rng.next_u64() as u128) % span;
                    (lo as i128 + off as i128) as $t
                }
            }
        )*};
    }

    int_range_strategy!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

    macro_rules! float_range_strategy {
        ($($t:ty),*) => {$(
            impl Strategy for core::ops::Range<$t> {
                type Value = $t;

                fn generate(&self, rng: &mut TestRng) -> $t {
                    let u = rng.unit_f64() as $t;
                    self.start + u * (self.end - self.start)
                }
            }

            impl Strategy for core::ops::RangeInclusive<$t> {
                type Value = $t;

                fn generate(&self, rng: &mut TestRng) -> $t {
                    let u = rng.unit_f64() as $t;
                    self.start() + u * (self.end() - self.start())
                }
            }
        )*};
    }

    float_range_strategy!(f32, f64);

    macro_rules! tuple_strategy {
        ($(($($s:ident . $idx:tt),+))*) => {$(
            impl<$($s: Strategy),+> Strategy for ($($s,)+) {
                type Value = ($($s::Value,)+);

                fn generate(&self, rng: &mut TestRng) -> Self::Value {
                    ($(self.$idx.generate(rng),)+)
                }
            }
        )*};
    }

    tuple_strategy! {
        (A.0)
        (A.0, B.1)
        (A.0, B.1, C.2)
        (A.0, B.1, C.2, D.3)
        (A.0, B.1, C.2, D.3, E.4)
    }
}

pub mod arbitrary {
    use crate::strategy::Strategy;
    use crate::test_runner::TestRng;

    /// `any::<T>()` marker strategy.
    #[derive(Debug, Clone, Copy, Default)]
    pub struct Any<T>(core::marker::PhantomData<T>);

    pub fn any<T>() -> Any<T>
    where
        Any<T>: Strategy<Value = T>,
    {
        Any(core::marker::PhantomData)
    }

    macro_rules! any_int {
        ($($t:ty),*) => {$(
            impl Strategy for Any<$t> {
                type Value = $t;

                fn generate(&self, rng: &mut TestRng) -> $t {
                    rng.next_u64() as $t
                }
            }
        )*};
    }

    any_int!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

    impl Strategy for Any<bool> {
        type Value = bool;

        fn generate(&self, rng: &mut TestRng) -> bool {
            rng.next_u64() & 1 == 1
        }
    }

    impl Strategy for Any<f64> {
        type Value = f64;

        fn generate(&self, rng: &mut TestRng) -> f64 {
            // Finite values over a wide range, like proptest's default.
            (rng.unit_f64() - 0.5) * 2e9
        }
    }

    impl Strategy for Any<f32> {
        type Value = f32;

        fn generate(&self, rng: &mut TestRng) -> f32 {
            ((rng.unit_f64() - 0.5) * 2e6) as f32
        }
    }
}

pub mod collection {
    use crate::strategy::Strategy;
    use crate::test_runner::TestRng;

    /// Element-count specification for [`vec`].
    #[derive(Debug, Clone)]
    pub struct SizeRange {
        lo: usize,
        hi: usize, // inclusive
    }

    impl From<usize> for SizeRange {
        fn from(n: usize) -> Self {
            SizeRange { lo: n, hi: n }
        }
    }

    impl From<core::ops::Range<usize>> for SizeRange {
        fn from(r: core::ops::Range<usize>) -> Self {
            assert!(r.start < r.end, "empty size range");
            SizeRange {
                lo: r.start,
                hi: r.end - 1,
            }
        }
    }

    impl From<core::ops::RangeInclusive<usize>> for SizeRange {
        fn from(r: core::ops::RangeInclusive<usize>) -> Self {
            SizeRange {
                lo: *r.start(),
                hi: *r.end(),
            }
        }
    }

    /// Strategy for `Vec<S::Value>` with a random length in the size range.
    #[derive(Debug, Clone)]
    pub struct VecStrategy<S> {
        element: S,
        size: SizeRange,
    }

    pub fn vec<S: Strategy>(element: S, size: impl Into<SizeRange>) -> VecStrategy<S> {
        VecStrategy {
            element,
            size: size.into(),
        }
    }

    impl<S: Strategy> Strategy for VecStrategy<S> {
        type Value = Vec<S::Value>;

        fn generate(&self, rng: &mut TestRng) -> Vec<S::Value> {
            let span = self.size.hi - self.size.lo + 1;
            let len = self.size.lo + (rng.next_u64() as usize) % span;
            (0..len).map(|_| self.element.generate(rng)).collect()
        }
    }
}

pub mod prelude {
    pub use crate::arbitrary::any;
    pub use crate::strategy::{Just, Strategy};
    pub use crate::{prop_assert, prop_assert_eq, prop_assert_ne, proptest};

    #[derive(Debug, Clone, Default)]
    pub struct ProptestConfig {
        pub cases: u32,
    }

    /// Mirror of `proptest::prelude::prop`.
    pub mod prop {
        pub use crate::collection;
    }
}

/// Expands each `fn name(bindings) { body }` item into a plain `#[test]`
/// running 32 deterministic generated cases. Attributes (including `#[test]`
/// and doc comments) are passed through.
#[macro_export]
macro_rules! proptest {
    ($($(#[$meta:meta])* fn $name:ident($($params:tt)*) $body:block)*) => {
        $(
            $(#[$meta])*
            fn $name() {
                for __case in 0..32u64 {
                    let mut __rng = $crate::test_runner::TestRng::new(
                        $crate::test_runner::seed_from_name(stringify!($name), __case),
                    );
                    $crate::__prop_bind!(__rng, $($params)*);
                    $body
                }
            }
        )*
    };
}

/// Internal: turn `pat in strategy, ...` bindings into `let` statements.
#[macro_export]
macro_rules! __prop_bind {
    ($rng:ident $(,)?) => {};
    ($rng:ident, $p:pat in $s:expr $(,)?) => {
        let $p = $crate::strategy::Strategy::generate(&($s), &mut $rng);
    };
    ($rng:ident, $p:pat in $s:expr, $($rest:tt)+) => {
        let $p = $crate::strategy::Strategy::generate(&($s), &mut $rng);
        $crate::__prop_bind!($rng, $($rest)+);
    };
}

#[macro_export]
macro_rules! prop_assert {
    ($($tt:tt)*) => { assert!($($tt)*) };
}

#[macro_export]
macro_rules! prop_assert_eq {
    ($($tt:tt)*) => { assert_eq!($($tt)*) };
}

#[macro_export]
macro_rules! prop_assert_ne {
    ($($tt:tt)*) => { assert_ne!($($tt)*) };
}

#[macro_export]
macro_rules! prop_compose {
    ($($tt:tt)*) => {};
}
