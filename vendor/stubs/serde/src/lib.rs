//! Offline stand-in for `serde` (traits only; derives emit empty impls).
#![allow(clippy::all)]

pub trait Serialize {}

pub trait Deserialize<'de>: Sized {}

#[cfg(feature = "derive")]
pub use serde_derive::{Deserialize, Serialize};
