//! Offline stand-in for `serde_derive`: emits empty trait impls.
//!
//! Handles non-generic `struct`/`enum` items (all the workspace needs).
use proc_macro::{TokenStream, TokenTree};

fn item_name(input: TokenStream) -> Option<String> {
    let mut saw_kw = false;
    for tt in input {
        match tt {
            TokenTree::Ident(id) => {
                let s = id.to_string();
                if saw_kw {
                    return Some(s);
                }
                if s == "struct" || s == "enum" {
                    saw_kw = true;
                }
            }
            _ => {}
        }
    }
    None
}

#[proc_macro_derive(Serialize)]
pub fn derive_serialize(input: TokenStream) -> TokenStream {
    let name = item_name(input).expect("derive target has a name");
    format!("impl serde::Serialize for {name} {{}}")
        .parse()
        .unwrap()
}

#[proc_macro_derive(Deserialize)]
pub fn derive_deserialize(input: TokenStream) -> TokenStream {
    let name = item_name(input).expect("derive target has a name");
    format!("impl<'de> serde::Deserialize<'de> for {name} {{}}")
        .parse()
        .unwrap()
}
