#!/usr/bin/env bash
# Local CI gate — the same steps the GitHub workflow runs.
#
#   ./ci.sh
#
# Fails fast on the first broken step.
set -euo pipefail
cd "$(dirname "$0")"

echo "==> cargo build --release"
cargo build --release

echo "==> cargo test -p mobigrid-wireless"
cargo test -q -p mobigrid-wireless

echo "==> cargo test -q"
cargo test -q

echo "==> cargo test -p mobigrid-bench --test zero_alloc"
cargo test -p mobigrid-bench --test zero_alloc

echo "==> cargo test -p mobigrid-experiments --test golden_trace"
cargo test -q -p mobigrid-experiments --test golden_trace

echo "==> fault_matrix smoke"
cargo run --release -p mobigrid-experiments --bin fault_matrix -- --ticks 60 > /dev/null

echo "==> telemetry export smoke"
cargo test -q -p mobigrid-experiments --test telemetry_export
smoke_jsonl="$(mktemp -t mobigrid-telemetry.XXXXXX.jsonl)"
cargo run --release -p mobigrid-experiments --bin experiment -- \
  --experiment fig4 --ticks 60 --telemetry "$smoke_jsonl" > /dev/null
test -s "$smoke_jsonl"
if command -v python3 > /dev/null; then
  # Independent parser: every exported line must be valid JSON.
  python3 -c 'import json,sys; [json.loads(l) for l in open(sys.argv[1]) if l.strip()]' "$smoke_jsonl"
fi
rm -f "$smoke_jsonl"

echo "==> flight-recorder smoke"
cargo test -q -p mobigrid-experiments --test flight_recorder
# Record a campus run with a ring big enough to retain every event, then
# replay the invariant monitors offline; any violation fails the build.
flight_jsonl="$(mktemp -t mobigrid-flight.XXXXXX.jsonl)"
cargo run --release -p mobigrid-experiments --bin experiment -- \
  --experiment fig4 --ticks 120 --telemetry "$flight_jsonl" --events 2097152 > /dev/null
cargo run --release -p mobigrid-experiments --bin trace -- "$flight_jsonl" --check
rm -f "$flight_jsonl"

echo "==> SoA equivalence suite"
cargo test -q -p mobigrid-experiments --test soa_equivalence

echo "==> metro_100k smoke (scale sweep, 50-tick cap)"
# Drives the columnar engine through campus_140 -> city_1140 -> metro_100k;
# the 100k-node city must build and tick. The printed ns/tick is advisory
# (CI containers are noisy); completion is the gate.
cargo run --release -p mobigrid-experiments --bin experiment -- \
  --experiment scale --ticks 50

echo "==> cargo bench --workspace --no-run"
cargo bench --workspace --no-run

echo "==> cargo clippy --workspace -- -D warnings"
cargo clippy --workspace -- -D warnings

echo "==> cargo clippy -p mobigrid-telemetry -- -D warnings -D missing-docs"
cargo clippy -p mobigrid-telemetry -- -D warnings -D missing-docs

echo "==> cargo clippy -p mobigrid-adf -- -D warnings -D missing-docs"
cargo clippy -p mobigrid-adf -- -D warnings -D missing-docs

echo "CI OK"
