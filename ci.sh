#!/usr/bin/env bash
# Local CI gate — the same steps the GitHub workflow runs.
#
#   ./ci.sh
#
# Fails fast on the first broken step.
set -euo pipefail
cd "$(dirname "$0")"

echo "==> cargo build --release"
cargo build --release

echo "==> cargo test -p mobigrid-wireless"
cargo test -q -p mobigrid-wireless

echo "==> cargo test -q"
cargo test -q

echo "==> cargo test -p mobigrid-bench --test zero_alloc"
cargo test -p mobigrid-bench --test zero_alloc

echo "==> cargo test -p mobigrid-experiments --test golden_trace"
cargo test -q -p mobigrid-experiments --test golden_trace

echo "==> fault_matrix smoke"
cargo run --release -p mobigrid-experiments --bin fault_matrix -- --ticks 60 > /dev/null

echo "==> cargo bench --workspace --no-run"
cargo bench --workspace --no-run

echo "==> cargo clippy --workspace -- -D warnings"
cargo clippy --workspace -- -D warnings

echo "CI OK"
