#!/usr/bin/env bash
# Local CI gate — the same steps the GitHub workflow runs.
#
#   ./ci.sh
#
# Fails fast on the first broken step.
set -euo pipefail
cd "$(dirname "$0")"

echo "==> cargo build --release"
cargo build --release

echo "==> cargo test -q"
cargo test -q

echo "==> cargo test -p mobigrid-bench --test zero_alloc"
cargo test -p mobigrid-bench --test zero_alloc

echo "==> cargo bench --workspace --no-run"
cargo bench --workspace --no-run

echo "==> cargo clippy --workspace -- -D warnings"
cargo clippy --workspace -- -D warnings

echo "CI OK"
