//! # mobigrid — adaptive distance filter-based traffic reduction for mobile grids
//!
//! A from-scratch Rust reproduction of *Adaptive Distance Filter-based
//! Traffic Reduction for Mobile Grid* (Kim, Jang & Lee, ICDCS Workshops
//! 2007): the ADF algorithm itself plus every substrate its evaluation
//! depends on — campus model, mobility generators, wireless access layer, a
//! miniature HLA run-time infrastructure, statistical estimators and the
//! experiment harness regenerating each of the paper's tables and figures.
//!
//! This umbrella crate re-exports the workspace crates under one roof:
//!
//! | Module | Crate | Contents |
//! |---|---|---|
//! | [`geo`] | `mobigrid-geo` | 2-D geometry: points, headings, polylines, regions |
//! | [`sim`] | `mobigrid-sim` | Discrete-event kernel, deterministic RNG, statistics |
//! | [`hla`] | `mobigrid-hla` | Mini HLA 1.3 RTI: pub/sub, object, time management |
//! | [`campus`] | `mobigrid-campus` | The Figure-1 experiment site and routing |
//! | [`mobility`] | `mobigrid-mobility` | SS/RMS/LMS mobility models, schedules, traces |
//! | [`wireless`] | `mobigrid-wireless` | Gateways, coverage, LU frames, traffic meters |
//! | [`forecast`] | `mobigrid-forecast` | Exponential smoothing family, position estimators |
//! | [`cluster`] | `mobigrid-cluster` | Sequential clustering (BSAS), k-means baseline |
//! | [`adf`] | `mobigrid-adf` | **The paper's contribution**: classifier, filters, broker, pipeline |
//! | [`experiments`] | `mobigrid-experiments` | Table-1 workload and figure regeneration |
//!
//! # Quickstart
//!
//! Run the paper's headline experiment in a few lines:
//!
//! ```
//! use mobigrid::adf::{AdaptiveDistanceFilter, AdfConfig, SimBuilder};
//! use mobigrid::campus::Campus;
//! use mobigrid::experiments::workload;
//!
//! let campus = Campus::inha_like();
//! let nodes = workload::generate_population(&campus, 42);
//! let mut sim = SimBuilder::new()
//!     .nodes(nodes)
//!     .policy(AdaptiveDistanceFilter::new(AdfConfig::new(1.0)).unwrap())
//!     .build()
//!     .unwrap();
//!
//! let stats = sim.run(60); // one simulated minute
//! let sent: u32 = stats.iter().map(|t| t.sent).sum();
//! let observed: u32 = stats.iter().map(|t| t.observed).sum();
//! assert!(sent < observed); // the filter reduced traffic
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub use mobigrid_adf as adf;
pub use mobigrid_campus as campus;
pub use mobigrid_cluster as cluster;
pub use mobigrid_experiments as experiments;
pub use mobigrid_forecast as forecast;
pub use mobigrid_geo as geo;
pub use mobigrid_hla as hla;
pub use mobigrid_mobility as mobility;
pub use mobigrid_sim as sim;
pub use mobigrid_wireless as wireless;
