//! Cross-crate integration tests: the full 140-node pipeline built from the
//! public API of the umbrella crate.

use mobigrid::adf::{
    AdaptiveDistanceFilter, AdfConfig, EstimatorKind, IdealPolicy, MobileNode, SimBuilder,
    TickStats,
};
use mobigrid::campus::Campus;
use mobigrid::experiments::workload;

fn run_adf(seed: u64, factor: f64, ticks: u64) -> Vec<TickStats> {
    let campus = Campus::inha_like();
    let nodes = workload::generate_population(&campus, seed);
    let mut sim = SimBuilder::new()
        .nodes(nodes)
        .policy(AdaptiveDistanceFilter::new(AdfConfig::new(factor)).expect("valid config"))
        .network(workload::default_network(&campus))
        .build()
        .expect("valid simulation");
    sim.run(ticks)
}

#[test]
fn whole_pipeline_is_deterministic_from_the_seed() {
    let a = run_adf(7, 1.0, 200);
    let b = run_adf(7, 1.0, 200);
    assert_eq!(a.len(), b.len());
    for (x, y) in a.iter().zip(&b) {
        assert_eq!(x.sent, y.sent);
        assert_eq!(x.rmse_with_le.to_bits(), y.rmse_with_le.to_bits());
        assert_eq!(x.rmse_without_le.to_bits(), y.rmse_without_le.to_bits());
    }
}

#[test]
fn different_seeds_produce_different_runs() {
    let a = run_adf(1, 1.0, 120);
    let b = run_adf(2, 1.0, 120);
    let sent_a: u64 = a.iter().map(|t| u64::from(t.sent)).sum();
    let sent_b: u64 = b.iter().map(|t| u64::from(t.sent)).sum();
    assert_ne!(sent_a, sent_b, "seeds should perturb the workload");
}

#[test]
fn accounting_conservation_sent_plus_filtered_equals_observed() {
    let stats = run_adf(42, 1.0, 300);
    for t in &stats {
        assert_eq!(t.observed, 140, "every node observed every tick");
        assert_eq!(
            t.region.total_observed(),
            u64::from(t.observed),
            "tallies must cover every observation at t={}",
            t.time_s
        );
        assert_eq!(
            t.region.total_sent(),
            u64::from(t.sent),
            "tallies must match the sent count at t={}",
            t.time_s
        );
        assert!(t.sent <= t.observed);
    }
}

#[test]
fn network_byte_accounting_matches_sent_updates() {
    let campus = Campus::inha_like();
    let nodes = workload::generate_population(&campus, 5);
    let mut sim = SimBuilder::new()
        .nodes(nodes)
        .policy(AdaptiveDistanceFilter::new(AdfConfig::new(1.0)).expect("valid config"))
        .network(workload::default_network(&campus))
        .build()
        .expect("valid simulation");
    let stats = sim.run(150);
    let sent: u64 = stats.iter().map(|t| u64::from(t.sent)).sum();
    let meter = sim.network().expect("attached").meter();
    assert_eq!(meter.messages(), sent);
    assert_eq!(
        meter.bytes(),
        sent * mobigrid::wireless::LocationUpdate::WIRE_SIZE as u64
    );
    assert_eq!(
        sim.network().expect("attached").dropped(),
        0,
        "full coverage"
    );
}

#[test]
fn broker_learns_every_node_under_ideal_updates() {
    let campus = Campus::inha_like();
    let nodes = workload::generate_population(&campus, 9);
    let mut sim = SimBuilder::new()
        .nodes(nodes)
        .policy(IdealPolicy::new())
        .estimator(EstimatorKind::Brown { alpha: 0.5 })
        .build()
        .expect("valid simulation");
    sim.step();
    assert_eq!(sim.broker_with_le().node_count(), 140);
    assert_eq!(sim.broker_without_le().node_count(), 140);
    // Under ideal updates both brokers are exact.
    let s = sim.step();
    assert_eq!(s.rmse_with_le, 0.0);
    assert_eq!(s.rmse_without_le, 0.0);
}

#[test]
fn nodes_stay_inside_their_home_regions() {
    let campus = Campus::inha_like();
    let nodes = workload::generate_population(&campus, 3);
    let mut sim = SimBuilder::new()
        .nodes(nodes)
        .policy(IdealPolicy::new())
        .build()
        .expect("valid simulation");
    sim.run(200);
    for node in (0..sim.node_count()).map(|i| sim.node(i)) {
        let region = campus.region(node.region());
        // Road nodes ride the spine; building nodes the footprint. Allow a
        // small tolerance for corridor-width rounding.
        let inside = region.contains(node.position());
        assert!(
            inside,
            "{} strayed from {} to {}",
            node.id(),
            region.name(),
            node.position()
        );
    }
}

#[test]
fn ground_truth_traces_are_recorded_when_opted_in() {
    // Trace recording is off by default (the steady-state tick path is
    // allocation-free); analyses that want ground-truth traces opt in
    // per node.
    let campus = Campus::inha_like();
    let nodes: Vec<_> = workload::generate_population(&campus, 4)
        .into_iter()
        .map(MobileNode::with_trace_recording)
        .collect();
    let mut sim = SimBuilder::new()
        .nodes(nodes)
        .policy(IdealPolicy::new())
        .build()
        .expect("valid simulation");
    sim.run(50);
    for node in (0..sim.node_count()).map(|i| sim.node(i)) {
        assert_eq!(node.trace().len(), 50);
        assert!((node.trace().duration() - 49.0).abs() < 1e-9);
    }
}

#[test]
fn traces_stay_empty_by_default() {
    let campus = Campus::inha_like();
    let nodes = workload::generate_population(&campus, 4);
    let mut sim = SimBuilder::new()
        .nodes(nodes)
        .policy(IdealPolicy::new())
        .build()
        .expect("valid simulation");
    sim.run(50);
    for node in (0..sim.node_count()).map(|i| sim.node(i)) {
        assert!(node.trace().is_empty());
    }
}
