//! Experiment smoke tests: assert the qualitative shape of every figure the
//! paper reports, on a medium-length run.

use std::sync::OnceLock;

use mobigrid::experiments::campaign::{run_campaign, CampaignData};
use mobigrid::experiments::config::ExperimentConfig;
use mobigrid::experiments::{fig4, fig5, fig6, fig7, fig89, table1};

fn data() -> &'static CampaignData {
    static DATA: OnceLock<CampaignData> = OnceLock::new();
    DATA.get_or_init(|| {
        run_campaign(&ExperimentConfig {
            duration_ticks: 600,
            ..ExperimentConfig::default()
        })
    })
}

#[test]
fn table1_population_is_the_papers() {
    let t = table1::compute();
    assert_eq!(t.total(), 140);
    assert_eq!(t.rows.len(), 5);
}

#[test]
fn fig4_shape_adf_reduces_traffic_ordered_by_factor() {
    let fig = fig4::compute(data());
    // Ideal first at ~140 LU/s.
    assert_eq!(fig.mean_lu_per_sec[0].0, "ideal");
    assert!((fig.mean_lu_per_sec[0].1 - 140.0).abs() < 1e-9);
    // Paper: 30–77 % reduction range across 0.75–1.25 av.
    let reductions: Vec<f64> = fig.reduction_pct[1..].iter().map(|r| r.1).collect();
    assert!(reductions[0] > 15.0, "0.75av too weak: {reductions:?}");
    assert!(reductions[2] > 60.0, "1.25av too weak: {reductions:?}");
    assert!(reductions.windows(2).all(|w| w[1] > w[0]));
}

#[test]
fn fig5_shape_accumulated_savings_grow_with_factor() {
    let fig = fig5::compute(data());
    let savings: Vec<u64> = fig.saved_vs_ideal[1..].iter().map(|s| s.1).collect();
    assert!(savings.windows(2).all(|w| w[1] > w[0]), "{savings:?}");
    // Ideal accumulates exactly nodes × ticks.
    assert_eq!(fig.totals[0].1, 140 * 600);
}

#[test]
fn fig6_shape_transmission_rates_fall_with_factor() {
    let fig = fig6::compute(data());
    for w in fig.rates.windows(2) {
        assert!(w[1].road_pct < w[0].road_pct);
        assert!(w[1].building_pct < w[0].building_pct);
    }
    // Paper: at the smallest DTH buildings are filtered relatively harder.
    assert!(fig.rates[0].building_pct < fig.rates[0].road_pct);
}

#[test]
fn fig7_shape_le_cuts_error_at_every_factor() {
    let fig = fig7::compute(data());
    for row in &fig.summary {
        assert!(
            row.rmse_with_le < row.rmse_without_le,
            "LE failed at {:.2}av: {row:?}",
            row.factor
        );
        assert!(row.le_ratio_pct() < 100.0);
    }
    // Error grows with the DTH factor.
    assert!(fig.summary[2].rmse_without_le > fig.summary[0].rmse_without_le);
}

#[test]
fn fig89_shape_road_error_dominates_building_error() {
    let fig = fig89::compute(data());
    for row in fig.without_le.iter().chain(&fig.with_le) {
        assert!(
            row.road_to_building_ratio() > 2.0,
            "paper reports ~4.5x; got {row:?}"
        );
    }
}

#[test]
fn reports_render_for_every_figure() {
    let d = data();
    for text in [
        table1::compute().to_string(),
        fig4::compute(d).to_string(),
        fig5::compute(d).to_string(),
        fig6::compute(d).to_string(),
        fig7::compute(d).to_string(),
        fig89::compute(d).to_string(),
    ] {
        assert!(!text.trim().is_empty());
    }
}
