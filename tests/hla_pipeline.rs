//! Cross-substrate equivalence: the distance filter run through the HLA
//! federation produces exactly the same decisions as the filter driven
//! directly — the RTI adds distribution, not behaviour.

use mobigrid::adf::DistanceFilter;
use mobigrid::campus::{Campus, RegionShape};
use mobigrid::hla::{Callback, FedTime, ObjectModel, Rti};
use mobigrid::mobility::{MobilityModel, RoadPatroller};
use mobigrid::wireless::{LocationUpdate, MnId};
use rand::rngs::StdRng;
use rand::SeedableRng;

fn node_positions(ticks: u64) -> Vec<mobigrid::geo::Point> {
    let campus = Campus::inha_like();
    let road = campus.region_by_name("R1").expect("R1 exists");
    let RegionShape::Corridor { spine, .. } = road.shape() else {
        unreachable!("roads are corridors");
    };
    let mut node = RoadPatroller::new(spine.clone(), (1.0, 4.0), 40.0);
    let mut rng = StdRng::seed_from_u64(99);
    (0..ticks).map(|_| node.step(1.0, &mut rng)).collect()
}

#[test]
fn federated_filtering_matches_direct_filtering() {
    let positions = node_positions(150);

    // --- Direct run -------------------------------------------------------
    let mut direct = DistanceFilter::new(2.0);
    let direct_decisions: Vec<bool> = positions
        .iter()
        .map(|p| direct.observe(*p).is_sent())
        .collect();

    // --- Federated run ----------------------------------------------------
    let mut fom = ObjectModel::new();
    let class = fom.add_object_class("RawLocation");
    let attr = fom.add_attribute(class, "lu").expect("fresh attribute");
    let rti = Rti::new();
    rti.create_federation("eq", fom).expect("fresh name");
    let mn_fed = rti.join("eq", "mn").expect("federation exists");
    let adf_fed = rti.join("eq", "adf").expect("federation exists");
    mn_fed.publish_object_class(class).expect("declared");
    adf_fed
        .subscribe_object_class(class, &[attr])
        .expect("declared");
    for f in [&mn_fed, &adf_fed] {
        f.enable_time_regulation(FedTime::from_secs_f64(0.5))
            .expect("first enable");
        f.enable_time_constrained().expect("first enable");
    }
    let obj = mn_fed.register_object(class).expect("published");
    adf_fed.tick().expect("joined");

    let mut federated = DistanceFilter::new(2.0);
    let mut federated_decisions = Vec::new();
    for (i, pos) in positions.iter().enumerate() {
        let now = FedTime::from_secs(i as u64 + 1);
        let lu = LocationUpdate::new(MnId::new(0), (i + 1) as f64, *pos, i as u32);
        mn_fed
            .update_attributes(obj, vec![(attr, lu.encode().to_vec())], Some(now))
            .expect("owned object");
        mn_fed.request_time_advance(now).expect("monotone");
        adf_fed.request_time_advance(now).expect("monotone");
        for cb in adf_fed.tick().expect("joined") {
            if let Callback::ReflectAttributes { values, .. } = cb {
                let lu = LocationUpdate::decode(&values[0].1).expect("well-formed");
                federated_decisions.push(federated.observe(lu.position).is_sent());
            }
        }
        mn_fed.tick().expect("joined");
    }

    assert_eq!(federated_decisions.len(), direct_decisions.len());
    assert_eq!(federated_decisions, direct_decisions);
}

#[test]
fn federation_synchronises_phases_with_sync_points() {
    // The experiments use a "population-ready" barrier before starting the
    // clock; verify the full announce/achieve/synchronised protocol across
    // three federates.
    let rti = Rti::new();
    rti.create_federation("sync", ObjectModel::new())
        .expect("fresh");
    let feds: Vec<_> = ["mn", "adf", "broker"]
        .iter()
        .map(|n| rti.join("sync", *n).expect("federation exists"))
        .collect();

    feds[0]
        .register_sync_point("population-ready")
        .expect("fresh label");
    for f in &feds {
        let announced = f.tick().expect("joined").iter().any(
            |c| matches!(c, Callback::SyncPointAnnounced { label } if label == "population-ready"),
        );
        assert!(announced, "{} missed the announcement", f.name());
    }
    for f in &feds {
        f.achieve_sync_point("population-ready").expect("announced");
    }
    for f in &feds {
        let synced = f
            .tick()
            .expect("joined")
            .iter()
            .any(|c| matches!(c, Callback::FederationSynchronized { label } if label == "population-ready"));
        assert!(synced, "{} missed the synchronised callback", f.name());
    }
}
