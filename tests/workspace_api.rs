//! Exercises the umbrella crate's public surface the way a downstream user
//! would: everything reachable through `mobigrid::…` paths.

use mobigrid::adf::{EstimatorKind, GridBroker};
use mobigrid::campus::Campus;
use mobigrid::cluster::Bsas;
use mobigrid::forecast::{BrownDouble, Forecaster};
use mobigrid::geo::{Heading, Point, Vec2};
use mobigrid::mobility::{MobilityModel, StopModel};
use mobigrid::sim::{SeedStream, SimTime, TickDriver};
use mobigrid::wireless::{LocationUpdate, MnId};

#[test]
fn geometry_reexports_work() {
    let p = Point::new(3.0, 4.0);
    assert_eq!(Point::ORIGIN.distance_to(p), 5.0);
    let v = Vec2::from_polar(1.0, Heading::north());
    assert!((v.dy - 1.0).abs() < 1e-12);
}

#[test]
fn sim_kernel_reexports_work() {
    let ticks: Vec<_> = TickDriver::new(SimTime::from_secs(1), 3).collect();
    assert_eq!(ticks.len(), 3);
    assert_eq!(
        SeedStream::new(1).seed_for(2),
        SeedStream::new(1).seed_for(2)
    );
}

#[test]
fn campus_routing_through_umbrella() {
    let campus = Campus::inha_like();
    let from = campus.waypoint("gate_a").expect("gate A exists");
    let to = campus.entrance("B3").expect("B3 has an entrance");
    let route = campus.route(from, to).expect("reachable");
    assert!(route.length() > 100.0);
}

#[test]
fn forecasting_and_clustering_through_umbrella() {
    let mut b = BrownDouble::new(0.5).expect("valid alpha");
    for t in 0..50 {
        b.observe(f64::from(t));
    }
    assert!((b.forecast(1.0).expect("warmed up") - 50.0).abs() < 0.1);

    let clusters = Bsas::new(1.0).cluster(&[vec![1.0], vec![1.2], vec![9.0]]);
    assert_eq!(clusters.cluster_count(), 2);
}

#[test]
fn broker_and_wireless_through_umbrella() {
    let mut broker = GridBroker::new(EstimatorKind::Brown { alpha: 0.5 }).expect("valid");
    let mn = MnId::new(1);
    for t in 0..5 {
        broker.receive(&LocationUpdate::new(
            mn,
            f64::from(t),
            Point::new(f64::from(t), 0.0),
            t,
        ));
    }
    broker.note_filtered(mn, 6.0);
    assert!(broker.location(mn).expect("known node").estimated);
}

#[test]
fn mobility_models_through_umbrella() {
    let mut m = StopModel::new(Point::new(1.0, 2.0));
    let mut rng = <rand::rngs::StdRng as rand::SeedableRng>::seed_from_u64(0);
    assert_eq!(m.step(1.0, &mut rng), Point::new(1.0, 2.0));
}
