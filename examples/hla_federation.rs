//! The paper's distributed-simulation architecture on the mini HLA RTI:
//! a mobile-node federate publishes raw locations, the ADF federate filters
//! them and republishes the surviving updates, and the grid-broker federate
//! maintains its location DB — all under conservative time management.
//!
//! ```text
//! cargo run --example hla_federation
//! ```

use mobigrid::adf::{DistanceFilter, EstimatorKind, GridBroker};
use mobigrid::campus::{Campus, RegionShape};
use mobigrid::geo::Point;
use mobigrid::hla::{Callback, FedTime, ObjectModel, Rti};
use mobigrid::mobility::{MobilityModel, RoadPatroller};
use mobigrid::wireless::{LocationUpdate, MnId};
use rand::rngs::StdRng;
use rand::SeedableRng;

fn encode(lu: &LocationUpdate) -> Vec<u8> {
    lu.encode().to_vec()
}

fn main() {
    // --- Federation object model: raw and filtered location classes ------
    let mut fom = ObjectModel::new();
    let raw_class = fom.add_object_class("RawLocation");
    let raw_attr = fom.add_attribute(raw_class, "lu").expect("fresh attribute");
    let filtered_class = fom.add_object_class("FilteredLocation");
    let filtered_attr = fom
        .add_attribute(filtered_class, "lu")
        .expect("fresh attribute");

    let rti = Rti::new();
    rti.create_federation("campus", fom).expect("fresh name");
    let mn_fed = rti
        .join("campus", "mn-federate")
        .expect("federation exists");
    let adf_fed = rti
        .join("campus", "adf-federate")
        .expect("federation exists");
    let broker_fed = rti
        .join("campus", "broker-federate")
        .expect("federation exists");

    mn_fed.publish_object_class(raw_class).expect("declared");
    adf_fed
        .subscribe_object_class(raw_class, &[raw_attr])
        .expect("declared");
    adf_fed
        .publish_object_class(filtered_class)
        .expect("declared");
    broker_fed
        .subscribe_object_class(filtered_class, &[filtered_attr])
        .expect("declared");

    let lookahead = FedTime::from_secs_f64(0.5);
    for f in [&mn_fed, &adf_fed, &broker_fed] {
        f.enable_time_regulation(lookahead).expect("first enable");
        f.enable_time_constrained().expect("first enable");
    }

    let raw_obj = mn_fed.register_object(raw_class).expect("published");
    let filtered_obj = adf_fed.register_object(filtered_class).expect("published");
    adf_fed.tick().expect("joined");
    broker_fed.tick().expect("joined");

    // --- The simulated world behind the MN federate ----------------------
    let campus = Campus::inha_like();
    let road = campus.region_by_name("R2").expect("R2 exists");
    let RegionShape::Corridor { spine, .. } = road.shape() else {
        unreachable!("roads are corridors");
    };
    let mut node = RoadPatroller::new(spine.clone(), (1.0, 4.0), 20.0);
    let mut rng = StdRng::seed_from_u64(3);
    let mn = MnId::new(0);

    // --- The ADF federate's filter and the broker federate's DB ----------
    let mut filter = DistanceFilter::new(2.0);
    let mut broker = GridBroker::new(EstimatorKind::Brown { alpha: 0.5 }).expect("valid");

    let mut raw_updates = 0u32;
    let mut forwarded = 0u32;

    for step in 1..=120u64 {
        let now = FedTime::from_secs(step);
        let pos = node.step(1.0, &mut rng);
        let lu = LocationUpdate::new(mn, step as f64, pos, step as u32);
        mn_fed
            .update_attributes(raw_obj, vec![(raw_attr, encode(&lu))], Some(now))
            .expect("owned object");

        for f in [&mn_fed, &adf_fed, &broker_fed] {
            f.request_time_advance(now).expect("monotone");
        }

        // ADF federate: reflect raw updates, filter, forward survivors.
        for cb in adf_fed.tick().expect("joined") {
            if let Callback::ReflectAttributes { values, .. } = cb {
                let lu = LocationUpdate::decode(&values[0].1).expect("well-formed frame");
                raw_updates += 1;
                if filter.observe(lu.position).is_sent() {
                    forwarded += 1;
                    adf_fed
                        .update_attributes(
                            filtered_obj,
                            vec![(filtered_attr, encode(&lu))],
                            Some(now + lookahead),
                        )
                        .expect("owned object");
                } else {
                    broker.note_filtered(lu.node, lu.time_s);
                }
            }
        }

        // Broker federate: reflect filtered updates into the location DB.
        for cb in broker_fed.tick().expect("joined") {
            if let Callback::ReceiveInteraction { .. } = cb {
                unreachable!("no interactions declared");
            } else if let Callback::ReflectAttributes { values, .. } = cb {
                let lu = LocationUpdate::decode(&values[0].1).expect("well-formed frame");
                broker.receive(&lu);
            }
        }
        mn_fed.tick().expect("joined");
    }

    println!(
        "federates: {:?}",
        rti.federate_names("campus").expect("exists")
    );
    println!("raw location updates reflected at the ADF federate: {raw_updates}");
    println!(
        "forwarded to the broker federate: {forwarded} ({:.1}% filtered)",
        100.0 * (1.0 - f64::from(forwarded) / f64::from(raw_updates))
    );
    let belief = broker.location(mn).expect("node known");
    let truth: Point = node.position();
    println!(
        "broker belief {} vs truth {} — error {:.2} m (estimated: {})",
        belief.position,
        truth,
        belief.position.distance_to(truth),
        belief.estimated
    );
}
