//! Quickstart: run the paper's headline experiment for two simulated
//! minutes and print the traffic reduction and location error.
//!
//! ```text
//! cargo run --example quickstart
//! ```

use mobigrid::adf::{AdaptiveDistanceFilter, AdfConfig, SimBuilder};
use mobigrid::campus::Campus;
use mobigrid::experiments::workload;

fn main() {
    // The Figure-1 campus: 6 buildings, 5 roads, 2 gates.
    let campus = Campus::inha_like();
    println!(
        "campus: {} regions, graph of {} waypoints",
        campus.regions().len(),
        campus.graph().node_count()
    );

    // The Table-1 population: 140 nodes, deterministic from the seed.
    let nodes = workload::generate_population(&campus, 42);
    println!("population: {} mobile nodes", nodes.len());

    // The adaptive distance filter at DTH = 1.0 × cluster average velocity.
    let adf = AdaptiveDistanceFilter::new(AdfConfig::new(1.0)).expect("valid configuration");
    let mut sim = SimBuilder::new()
        .nodes(nodes)
        .policy(adf)
        .network(workload::default_network(&campus))
        .build()
        .expect("valid simulation");

    let stats = sim.run(120);

    let sent: u64 = stats.iter().map(|t| u64::from(t.sent)).sum();
    let observed: u64 = stats.iter().map(|t| u64::from(t.observed)).sum();
    let reduction = 100.0 * (1.0 - sent as f64 / observed as f64);
    println!("\nafter {} simulated seconds:", stats.len());
    println!("  location updates observed:    {observed}");
    println!("  location updates transmitted: {sent} ({reduction:.1}% reduction)");

    let meter = sim.network().expect("network attached").meter();
    println!("  bytes over the air:           {}", meter.bytes());

    let last = stats.last().expect("ran at least one tick");
    println!(
        "  location RMSE without LE:     {:.2} m",
        last.rmse_without_le
    );
    println!("  location RMSE with LE:        {:.2} m", last.rmse_with_le);
}
