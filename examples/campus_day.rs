//! Tom's day (§3.1 of the paper): compose the scenario from mobility
//! phases, walk it on the campus, and watch the ADF's classifier recover
//! the SS/RMS/LMS pattern of each phase from raw positions.
//!
//! ```text
//! cargo run --example campus_day
//! ```

use mobigrid::adf::MobilityClassifier;
use mobigrid::campus::Campus;
use mobigrid::geo::Rect;
use mobigrid::mobility::{
    LoopMode, MobilityModel, PathFollower, Phase, RandomWalk, Schedule, StopModel,
};
use rand::rngs::StdRng;
use rand::SeedableRng;

fn footprint(campus: &Campus, name: &str) -> Rect {
    campus
        .region_by_name(name)
        .expect("region exists")
        .shape()
        .bounding_box()
}

fn main() {
    let campus = Campus::inha_like();

    // Tom arrives at the bus stop and walks to the library (B4)…
    let bus_stop = campus.waypoint("bus_stop").expect("bus stop exists");
    let library_door = campus.entrance("B4").expect("library has an entrance");
    let to_library = campus
        .route(bus_stop, library_door)
        .expect("library reachable");
    let library_desk = footprint(&campus, "B4").center();

    // …then to class in B6, back, coffee break, and off to the lab in B3.
    let class_door = campus.entrance("B6").expect("B6 has an entrance");
    let to_class = campus.route(library_door, class_door).expect("reachable");
    let back_to_library = campus.route(class_door, library_door).expect("reachable");
    let lab_door = campus.entrance("B3").expect("B3 has an entrance");
    let to_lab = campus.route(library_door, lab_door).expect("reachable");
    let lab = footprint(&campus, "B3");

    // Scale the §3.1 scenario to minutes so the example runs quickly; the
    // mobility *patterns* per phase are what matters.
    let mut day = Schedule::new(vec![
        Phase::until_arrival(
            "(1) walk to library",
            PathFollower::new(to_library, 1.4, LoopMode::Once),
        ),
        Phase::timed("(2) study in library", 120.0, StopModel::new(library_desk)),
        Phase::until_arrival(
            "(3) walk to class",
            PathFollower::new(to_class, 1.4, LoopMode::Once),
        ),
        Phase::timed(
            "(4) attend class",
            120.0,
            StopModel::new(footprint(&campus, "B6").center()),
        ),
        Phase::until_arrival(
            "(5) back to library",
            PathFollower::new(back_to_library, 1.4, LoopMode::Once),
        ),
        Phase::timed(
            "(7) coffee break",
            90.0,
            RandomWalk::new(footprint(&campus, "B4"), library_desk, 0.8),
        ),
        Phase::until_arrival(
            "(8) walk to the lab",
            PathFollower::new(to_lab, 1.3, LoopMode::Once),
        ),
        Phase::timed(
            "(10) experiment in the lab",
            120.0,
            RandomWalk::new(lab, lab.center(), 0.8),
        ),
    ]);

    let mut rng = StdRng::seed_from_u64(7);
    let mut classifier = MobilityClassifier::new(10, 2.0);
    let mut last_phase = usize::MAX;

    for t in 0..1200u32 {
        let pos = day.step(1.0, &mut rng);
        classifier.observe(f64::from(t), pos);

        if day.current_phase_index() != last_phase {
            last_phase = day.current_phase_index();
            println!("t={t:>4}s  {}", day.current_phase_label());
        }
        if t % 60 == 0 && t > 0 {
            let region = campus.locate(pos).map_or("between regions", |r| r.name());
            println!(
                "t={t:>4}s    at {pos} in {region}: intended {}, classifier sees {}",
                day.pattern(),
                classifier.classify()
            );
        }
        if day.is_finished() {
            println!("t={t:>4}s  day complete — Tom heads to the bus stop");
            break;
        }
    }
}
