//! The motivating comparison: ideal location updates vs the general
//! (non-adaptive) distance filter vs the ADF, at each of the paper's DTH
//! factors.
//!
//! ```text
//! cargo run --release --example traffic_reduction
//! ```

use mobigrid::experiments::campaign::{run_policy, PolicySpec};
use mobigrid::experiments::config::ExperimentConfig;
use mobigrid::experiments::report;

fn main() {
    let cfg = ExperimentConfig {
        duration_ticks: 300,
        ..ExperimentConfig::default()
    };
    println!(
        "comparing policies over {} simulated seconds (seed {})\n",
        cfg.duration_ticks, cfg.seed
    );

    let mut rows = Vec::new();
    let specs = [
        PolicySpec::Ideal,
        PolicySpec::GeneralDf(0.75),
        PolicySpec::GeneralDf(1.0),
        PolicySpec::GeneralDf(1.25),
        PolicySpec::Adf(0.75),
        PolicySpec::Adf(1.0),
        PolicySpec::Adf(1.25),
    ];
    let ideal_sent = run_policy(&cfg, PolicySpec::Ideal).total_sent() as f64;
    for spec in specs {
        let run = run_policy(&cfg, spec);
        let (rmse_le, rmse_raw) = run.mean_rmse();
        rows.push(vec![
            run.label.clone(),
            format!("{:.1}", run.mean_lu_per_sec()),
            format!(
                "{:.1}%",
                100.0 * (1.0 - run.total_sent() as f64 / ideal_sent)
            ),
            format!("{}", run.network_bytes),
            format!("{rmse_raw:.2}"),
            format!("{rmse_le:.2}"),
        ]);
    }

    println!(
        "{}",
        report::text_table(
            &[
                "policy",
                "LU/s",
                "traffic cut",
                "bytes",
                "RMSE w/o LE",
                "RMSE w/ LE",
            ],
            &rows,
        )
    );
    println!("The ADF cuts more traffic than the general DF at the same factor by sizing");
    println!("each velocity cluster's threshold separately; the location estimator then");
    println!("claws back much of the accuracy the filtering gave up.");
}
