//! Location estimation shoot-out: when the filter silences a node, how well
//! do different broker-side estimators reconstruct its position?
//!
//! One road node patrols R1 while an aggressive distance filter suppresses
//! most of its updates; four estimators race against ground truth.
//!
//! ```text
//! cargo run --example location_estimation
//! ```

use mobigrid::adf::{DistanceFilter, EstimatorKind, GridBroker};
use mobigrid::campus::{Campus, RegionShape};
use mobigrid::forecast::metrics;
use mobigrid::mobility::{MobilityModel, RoadPatroller};
use mobigrid::wireless::{LocationUpdate, MnId};
use rand::rngs::StdRng;
use rand::SeedableRng;

fn main() {
    let campus = Campus::inha_like();
    let road = campus.region_by_name("R1").expect("R1 exists");
    let RegionShape::Corridor { spine, .. } = road.shape() else {
        unreachable!("roads are corridors");
    };

    let mut node = RoadPatroller::new(spine.clone(), (1.0, 4.0), 0.0);
    let mut rng = StdRng::seed_from_u64(11);
    let mut filter = DistanceFilter::new(2.5);
    let mn = MnId::new(0);

    let kinds = [
        ("without LE (stale)", EstimatorKind::WithoutLe),
        ("dead reckoning", EstimatorKind::DeadReckoning),
        ("Brown (paper)", EstimatorKind::Brown { alpha: 0.5 }),
        (
            "Holt per axis",
            EstimatorKind::HoltAxes {
                alpha: 0.7,
                beta: 0.2,
            },
        ),
    ];
    let mut brokers: Vec<GridBroker> = kinds
        .iter()
        .map(|(_, k)| GridBroker::new(*k).expect("valid estimator"))
        .collect();

    let mut truth_x = Vec::new();
    let mut truth_y = Vec::new();
    let mut beliefs: Vec<(Vec<f64>, Vec<f64>)> = vec![(Vec::new(), Vec::new()); kinds.len()];
    let mut sent = 0u32;
    let ticks = 600u32;

    for t in 0..ticks {
        let time_s = f64::from(t);
        let pos = node.step(1.0, &mut rng);
        let decision = filter.observe(pos);
        for broker in &mut brokers {
            if decision.is_sent() {
                broker.receive(&LocationUpdate::new(mn, time_s, pos, t));
            } else {
                broker.note_filtered(mn, time_s);
            }
        }
        if decision.is_sent() {
            sent += 1;
        }
        truth_x.push(pos.x);
        truth_y.push(pos.y);
        for (i, broker) in brokers.iter().enumerate() {
            let b = broker.location(mn).expect("record exists after first LU");
            beliefs[i].0.push(b.position.x);
            beliefs[i].1.push(b.position.y);
        }
    }

    println!(
        "road node, {ticks} s, DTH 2.5 m: {sent} updates sent ({:.1}% filtered)\n",
        100.0 * (1.0 - f64::from(sent) / f64::from(ticks))
    );
    println!("{:<22} {:>10} {:>10}", "estimator", "RMSE x", "RMSE y");
    println!("{}", "-".repeat(44));
    for ((name, _), (bx, by)) in kinds.iter().zip(&beliefs) {
        println!(
            "{name:<22} {:>10.2} {:>10.2}",
            metrics::rmse(&truth_x, bx),
            metrics::rmse(&truth_y, by)
        );
    }
}
