/root/repo/target/release/deps/mobigrid_forecast-68aa92c114c7dfb8.d: crates/forecast/src/lib.rs crates/forecast/src/ar.rs crates/forecast/src/brown.rs crates/forecast/src/error.rs crates/forecast/src/holt.rs crates/forecast/src/kalman.rs crates/forecast/src/lin.rs crates/forecast/src/metrics.rs crates/forecast/src/ses.rs crates/forecast/src/tracker.rs

/root/repo/target/release/deps/libmobigrid_forecast-68aa92c114c7dfb8.rlib: crates/forecast/src/lib.rs crates/forecast/src/ar.rs crates/forecast/src/brown.rs crates/forecast/src/error.rs crates/forecast/src/holt.rs crates/forecast/src/kalman.rs crates/forecast/src/lin.rs crates/forecast/src/metrics.rs crates/forecast/src/ses.rs crates/forecast/src/tracker.rs

/root/repo/target/release/deps/libmobigrid_forecast-68aa92c114c7dfb8.rmeta: crates/forecast/src/lib.rs crates/forecast/src/ar.rs crates/forecast/src/brown.rs crates/forecast/src/error.rs crates/forecast/src/holt.rs crates/forecast/src/kalman.rs crates/forecast/src/lin.rs crates/forecast/src/metrics.rs crates/forecast/src/ses.rs crates/forecast/src/tracker.rs

crates/forecast/src/lib.rs:
crates/forecast/src/ar.rs:
crates/forecast/src/brown.rs:
crates/forecast/src/error.rs:
crates/forecast/src/holt.rs:
crates/forecast/src/kalman.rs:
crates/forecast/src/lin.rs:
crates/forecast/src/metrics.rs:
crates/forecast/src/ses.rs:
crates/forecast/src/tracker.rs:
