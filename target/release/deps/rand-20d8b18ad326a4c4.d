/root/repo/target/release/deps/rand-20d8b18ad326a4c4.d: /tmp/stubs/rand/src/lib.rs

/root/repo/target/release/deps/librand-20d8b18ad326a4c4.rlib: /tmp/stubs/rand/src/lib.rs

/root/repo/target/release/deps/librand-20d8b18ad326a4c4.rmeta: /tmp/stubs/rand/src/lib.rs

/tmp/stubs/rand/src/lib.rs:
