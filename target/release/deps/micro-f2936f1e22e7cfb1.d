/root/repo/target/release/deps/micro-f2936f1e22e7cfb1.d: crates/bench/benches/micro.rs

/root/repo/target/release/deps/micro-f2936f1e22e7cfb1: crates/bench/benches/micro.rs

crates/bench/benches/micro.rs:
