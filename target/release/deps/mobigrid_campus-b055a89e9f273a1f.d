/root/repo/target/release/deps/mobigrid_campus-b055a89e9f273a1f.d: crates/campus/src/lib.rs crates/campus/src/campus.rs crates/campus/src/error.rs crates/campus/src/graph.rs crates/campus/src/grid_city.rs crates/campus/src/inha.rs crates/campus/src/region.rs

/root/repo/target/release/deps/libmobigrid_campus-b055a89e9f273a1f.rlib: crates/campus/src/lib.rs crates/campus/src/campus.rs crates/campus/src/error.rs crates/campus/src/graph.rs crates/campus/src/grid_city.rs crates/campus/src/inha.rs crates/campus/src/region.rs

/root/repo/target/release/deps/libmobigrid_campus-b055a89e9f273a1f.rmeta: crates/campus/src/lib.rs crates/campus/src/campus.rs crates/campus/src/error.rs crates/campus/src/graph.rs crates/campus/src/grid_city.rs crates/campus/src/inha.rs crates/campus/src/region.rs

crates/campus/src/lib.rs:
crates/campus/src/campus.rs:
crates/campus/src/error.rs:
crates/campus/src/graph.rs:
crates/campus/src/grid_city.rs:
crates/campus/src/inha.rs:
crates/campus/src/region.rs:
