/root/repo/target/release/deps/mobigrid_bench-1de30bc4176743d7.d: crates/bench/src/lib.rs

/root/repo/target/release/deps/libmobigrid_bench-1de30bc4176743d7.rlib: crates/bench/src/lib.rs

/root/repo/target/release/deps/libmobigrid_bench-1de30bc4176743d7.rmeta: crates/bench/src/lib.rs

crates/bench/src/lib.rs:
