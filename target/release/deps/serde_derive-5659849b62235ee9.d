/root/repo/target/release/deps/serde_derive-5659849b62235ee9.d: /tmp/stubs/serde_derive/src/lib.rs

/root/repo/target/release/deps/libserde_derive-5659849b62235ee9.so: /tmp/stubs/serde_derive/src/lib.rs

/tmp/stubs/serde_derive/src/lib.rs:
