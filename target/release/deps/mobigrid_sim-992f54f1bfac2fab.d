/root/repo/target/release/deps/mobigrid_sim-992f54f1bfac2fab.d: crates/sim/src/lib.rs crates/sim/src/engine.rs crates/sim/src/par.rs crates/sim/src/queue.rs crates/sim/src/rng.rs crates/sim/src/stats.rs crates/sim/src/stepper.rs crates/sim/src/time.rs

/root/repo/target/release/deps/libmobigrid_sim-992f54f1bfac2fab.rlib: crates/sim/src/lib.rs crates/sim/src/engine.rs crates/sim/src/par.rs crates/sim/src/queue.rs crates/sim/src/rng.rs crates/sim/src/stats.rs crates/sim/src/stepper.rs crates/sim/src/time.rs

/root/repo/target/release/deps/libmobigrid_sim-992f54f1bfac2fab.rmeta: crates/sim/src/lib.rs crates/sim/src/engine.rs crates/sim/src/par.rs crates/sim/src/queue.rs crates/sim/src/rng.rs crates/sim/src/stats.rs crates/sim/src/stepper.rs crates/sim/src/time.rs

crates/sim/src/lib.rs:
crates/sim/src/engine.rs:
crates/sim/src/par.rs:
crates/sim/src/queue.rs:
crates/sim/src/rng.rs:
crates/sim/src/stats.rs:
crates/sim/src/stepper.rs:
crates/sim/src/time.rs:
