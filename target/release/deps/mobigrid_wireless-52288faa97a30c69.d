/root/repo/target/release/deps/mobigrid_wireless-52288faa97a30c69.d: crates/wireless/src/lib.rs crates/wireless/src/energy.rs crates/wireless/src/error.rs crates/wireless/src/gateway.rs crates/wireless/src/message.rs crates/wireless/src/network.rs crates/wireless/src/outage.rs crates/wireless/src/traffic.rs

/root/repo/target/release/deps/libmobigrid_wireless-52288faa97a30c69.rlib: crates/wireless/src/lib.rs crates/wireless/src/energy.rs crates/wireless/src/error.rs crates/wireless/src/gateway.rs crates/wireless/src/message.rs crates/wireless/src/network.rs crates/wireless/src/outage.rs crates/wireless/src/traffic.rs

/root/repo/target/release/deps/libmobigrid_wireless-52288faa97a30c69.rmeta: crates/wireless/src/lib.rs crates/wireless/src/energy.rs crates/wireless/src/error.rs crates/wireless/src/gateway.rs crates/wireless/src/message.rs crates/wireless/src/network.rs crates/wireless/src/outage.rs crates/wireless/src/traffic.rs

crates/wireless/src/lib.rs:
crates/wireless/src/energy.rs:
crates/wireless/src/error.rs:
crates/wireless/src/gateway.rs:
crates/wireless/src/message.rs:
crates/wireless/src/network.rs:
crates/wireless/src/outage.rs:
crates/wireless/src/traffic.rs:
