/root/repo/target/release/deps/scalability-5776beba90ae78a8.d: crates/experiments/src/bin/scalability.rs crates/experiments/src/bin/common/mod.rs

/root/repo/target/release/deps/scalability-5776beba90ae78a8: crates/experiments/src/bin/scalability.rs crates/experiments/src/bin/common/mod.rs

crates/experiments/src/bin/scalability.rs:
crates/experiments/src/bin/common/mod.rs:
