/root/repo/target/release/deps/mobigrid_geo-3dff2f9e7fac78c7.d: crates/geo/src/lib.rs crates/geo/src/error.rs crates/geo/src/heading.rs crates/geo/src/point.rs crates/geo/src/polygon.rs crates/geo/src/polyline.rs crates/geo/src/rect.rs crates/geo/src/segment.rs crates/geo/src/vec2.rs

/root/repo/target/release/deps/libmobigrid_geo-3dff2f9e7fac78c7.rlib: crates/geo/src/lib.rs crates/geo/src/error.rs crates/geo/src/heading.rs crates/geo/src/point.rs crates/geo/src/polygon.rs crates/geo/src/polyline.rs crates/geo/src/rect.rs crates/geo/src/segment.rs crates/geo/src/vec2.rs

/root/repo/target/release/deps/libmobigrid_geo-3dff2f9e7fac78c7.rmeta: crates/geo/src/lib.rs crates/geo/src/error.rs crates/geo/src/heading.rs crates/geo/src/point.rs crates/geo/src/polygon.rs crates/geo/src/polyline.rs crates/geo/src/rect.rs crates/geo/src/segment.rs crates/geo/src/vec2.rs

crates/geo/src/lib.rs:
crates/geo/src/error.rs:
crates/geo/src/heading.rs:
crates/geo/src/point.rs:
crates/geo/src/polygon.rs:
crates/geo/src/polyline.rs:
crates/geo/src/rect.rs:
crates/geo/src/segment.rs:
crates/geo/src/vec2.rs:
