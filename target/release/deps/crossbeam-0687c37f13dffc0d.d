/root/repo/target/release/deps/crossbeam-0687c37f13dffc0d.d: /tmp/stubs/crossbeam/src/lib.rs

/root/repo/target/release/deps/libcrossbeam-0687c37f13dffc0d.rlib: /tmp/stubs/crossbeam/src/lib.rs

/root/repo/target/release/deps/libcrossbeam-0687c37f13dffc0d.rmeta: /tmp/stubs/crossbeam/src/lib.rs

/tmp/stubs/crossbeam/src/lib.rs:
