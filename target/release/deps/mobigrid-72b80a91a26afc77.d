/root/repo/target/release/deps/mobigrid-72b80a91a26afc77.d: src/lib.rs

/root/repo/target/release/deps/libmobigrid-72b80a91a26afc77.rlib: src/lib.rs

/root/repo/target/release/deps/libmobigrid-72b80a91a26afc77.rmeta: src/lib.rs

src/lib.rs:
