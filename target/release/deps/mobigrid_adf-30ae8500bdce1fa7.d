/root/repo/target/release/deps/mobigrid_adf-30ae8500bdce1fa7.d: crates/adf/src/lib.rs crates/adf/src/broker.rs crates/adf/src/classifier.rs crates/adf/src/config.rs crates/adf/src/filter.rs crates/adf/src/node.rs crates/adf/src/pipeline.rs crates/adf/src/policy.rs crates/adf/src/stats.rs

/root/repo/target/release/deps/libmobigrid_adf-30ae8500bdce1fa7.rlib: crates/adf/src/lib.rs crates/adf/src/broker.rs crates/adf/src/classifier.rs crates/adf/src/config.rs crates/adf/src/filter.rs crates/adf/src/node.rs crates/adf/src/pipeline.rs crates/adf/src/policy.rs crates/adf/src/stats.rs

/root/repo/target/release/deps/libmobigrid_adf-30ae8500bdce1fa7.rmeta: crates/adf/src/lib.rs crates/adf/src/broker.rs crates/adf/src/classifier.rs crates/adf/src/config.rs crates/adf/src/filter.rs crates/adf/src/node.rs crates/adf/src/pipeline.rs crates/adf/src/policy.rs crates/adf/src/stats.rs

crates/adf/src/lib.rs:
crates/adf/src/broker.rs:
crates/adf/src/classifier.rs:
crates/adf/src/config.rs:
crates/adf/src/filter.rs:
crates/adf/src/node.rs:
crates/adf/src/pipeline.rs:
crates/adf/src/policy.rs:
crates/adf/src/stats.rs:
