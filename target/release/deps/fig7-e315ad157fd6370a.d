/root/repo/target/release/deps/fig7-e315ad157fd6370a.d: crates/experiments/src/bin/fig7.rs crates/experiments/src/bin/common/mod.rs

/root/repo/target/release/deps/fig7-e315ad157fd6370a: crates/experiments/src/bin/fig7.rs crates/experiments/src/bin/common/mod.rs

crates/experiments/src/bin/fig7.rs:
crates/experiments/src/bin/common/mod.rs:
