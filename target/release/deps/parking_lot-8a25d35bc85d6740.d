/root/repo/target/release/deps/parking_lot-8a25d35bc85d6740.d: /tmp/stubs/parking_lot/src/lib.rs

/root/repo/target/release/deps/libparking_lot-8a25d35bc85d6740.rlib: /tmp/stubs/parking_lot/src/lib.rs

/root/repo/target/release/deps/libparking_lot-8a25d35bc85d6740.rmeta: /tmp/stubs/parking_lot/src/lib.rs

/tmp/stubs/parking_lot/src/lib.rs:
