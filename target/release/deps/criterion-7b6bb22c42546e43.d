/root/repo/target/release/deps/criterion-7b6bb22c42546e43.d: /tmp/stubs/criterion/src/lib.rs

/root/repo/target/release/deps/libcriterion-7b6bb22c42546e43.rlib: /tmp/stubs/criterion/src/lib.rs

/root/repo/target/release/deps/libcriterion-7b6bb22c42546e43.rmeta: /tmp/stubs/criterion/src/lib.rs

/tmp/stubs/criterion/src/lib.rs:
