/root/repo/target/release/deps/bytes-02c19a970b36229c.d: /tmp/stubs/bytes/src/lib.rs

/root/repo/target/release/deps/libbytes-02c19a970b36229c.rlib: /tmp/stubs/bytes/src/lib.rs

/root/repo/target/release/deps/libbytes-02c19a970b36229c.rmeta: /tmp/stubs/bytes/src/lib.rs

/tmp/stubs/bytes/src/lib.rs:
