/root/repo/target/release/deps/mobigrid_cluster-e83e6d63dd119b72.d: crates/cluster/src/lib.rs crates/cluster/src/bsas.rs crates/cluster/src/clustering.rs crates/cluster/src/distance.rs crates/cluster/src/kmeans.rs

/root/repo/target/release/deps/libmobigrid_cluster-e83e6d63dd119b72.rlib: crates/cluster/src/lib.rs crates/cluster/src/bsas.rs crates/cluster/src/clustering.rs crates/cluster/src/distance.rs crates/cluster/src/kmeans.rs

/root/repo/target/release/deps/libmobigrid_cluster-e83e6d63dd119b72.rmeta: crates/cluster/src/lib.rs crates/cluster/src/bsas.rs crates/cluster/src/clustering.rs crates/cluster/src/distance.rs crates/cluster/src/kmeans.rs

crates/cluster/src/lib.rs:
crates/cluster/src/bsas.rs:
crates/cluster/src/clustering.rs:
crates/cluster/src/distance.rs:
crates/cluster/src/kmeans.rs:
