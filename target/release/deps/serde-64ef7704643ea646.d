/root/repo/target/release/deps/serde-64ef7704643ea646.d: /tmp/stubs/serde/src/lib.rs

/root/repo/target/release/deps/libserde-64ef7704643ea646.rlib: /tmp/stubs/serde/src/lib.rs

/root/repo/target/release/deps/libserde-64ef7704643ea646.rmeta: /tmp/stubs/serde/src/lib.rs

/tmp/stubs/serde/src/lib.rs:
