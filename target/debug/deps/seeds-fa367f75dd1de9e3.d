/root/repo/target/debug/deps/seeds-fa367f75dd1de9e3.d: crates/experiments/src/bin/seeds.rs crates/experiments/src/bin/common/mod.rs Cargo.toml

/root/repo/target/debug/deps/libseeds-fa367f75dd1de9e3.rmeta: crates/experiments/src/bin/seeds.rs crates/experiments/src/bin/common/mod.rs Cargo.toml

crates/experiments/src/bin/seeds.rs:
crates/experiments/src/bin/common/mod.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
