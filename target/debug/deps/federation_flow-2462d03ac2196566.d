/root/repo/target/debug/deps/federation_flow-2462d03ac2196566.d: crates/hla/tests/federation_flow.rs

/root/repo/target/debug/deps/libfederation_flow-2462d03ac2196566.rmeta: crates/hla/tests/federation_flow.rs

crates/hla/tests/federation_flow.rs:
