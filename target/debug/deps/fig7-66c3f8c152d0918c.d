/root/repo/target/debug/deps/fig7-66c3f8c152d0918c.d: crates/experiments/src/bin/fig7.rs crates/experiments/src/bin/common/mod.rs Cargo.toml

/root/repo/target/debug/deps/libfig7-66c3f8c152d0918c.rmeta: crates/experiments/src/bin/fig7.rs crates/experiments/src/bin/common/mod.rs Cargo.toml

crates/experiments/src/bin/fig7.rs:
crates/experiments/src/bin/common/mod.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
