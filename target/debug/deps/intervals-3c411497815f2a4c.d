/root/repo/target/debug/deps/intervals-3c411497815f2a4c.d: crates/experiments/src/bin/intervals.rs crates/experiments/src/bin/common/mod.rs

/root/repo/target/debug/deps/libintervals-3c411497815f2a4c.rmeta: crates/experiments/src/bin/intervals.rs crates/experiments/src/bin/common/mod.rs

crates/experiments/src/bin/intervals.rs:
crates/experiments/src/bin/common/mod.rs:
