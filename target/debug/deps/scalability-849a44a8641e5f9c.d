/root/repo/target/debug/deps/scalability-849a44a8641e5f9c.d: crates/experiments/src/bin/scalability.rs crates/experiments/src/bin/common/mod.rs

/root/repo/target/debug/deps/scalability-849a44a8641e5f9c: crates/experiments/src/bin/scalability.rs crates/experiments/src/bin/common/mod.rs

crates/experiments/src/bin/scalability.rs:
crates/experiments/src/bin/common/mod.rs:
