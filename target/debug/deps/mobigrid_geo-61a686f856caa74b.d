/root/repo/target/debug/deps/mobigrid_geo-61a686f856caa74b.d: crates/geo/src/lib.rs crates/geo/src/error.rs crates/geo/src/heading.rs crates/geo/src/point.rs crates/geo/src/polygon.rs crates/geo/src/polyline.rs crates/geo/src/rect.rs crates/geo/src/segment.rs crates/geo/src/vec2.rs Cargo.toml

/root/repo/target/debug/deps/libmobigrid_geo-61a686f856caa74b.rmeta: crates/geo/src/lib.rs crates/geo/src/error.rs crates/geo/src/heading.rs crates/geo/src/point.rs crates/geo/src/polygon.rs crates/geo/src/polyline.rs crates/geo/src/rect.rs crates/geo/src/segment.rs crates/geo/src/vec2.rs Cargo.toml

crates/geo/src/lib.rs:
crates/geo/src/error.rs:
crates/geo/src/heading.rs:
crates/geo/src/point.rs:
crates/geo/src/polygon.rs:
crates/geo/src/polyline.rs:
crates/geo/src/rect.rs:
crates/geo/src/segment.rs:
crates/geo/src/vec2.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
