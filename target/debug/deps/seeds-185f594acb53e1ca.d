/root/repo/target/debug/deps/seeds-185f594acb53e1ca.d: crates/experiments/src/bin/seeds.rs crates/experiments/src/bin/common/mod.rs

/root/repo/target/debug/deps/seeds-185f594acb53e1ca: crates/experiments/src/bin/seeds.rs crates/experiments/src/bin/common/mod.rs

crates/experiments/src/bin/seeds.rs:
crates/experiments/src/bin/common/mod.rs:
