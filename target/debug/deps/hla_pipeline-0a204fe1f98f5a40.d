/root/repo/target/debug/deps/hla_pipeline-0a204fe1f98f5a40.d: tests/hla_pipeline.rs

/root/repo/target/debug/deps/hla_pipeline-0a204fe1f98f5a40: tests/hla_pipeline.rs

tests/hla_pipeline.rs:
