/root/repo/target/debug/deps/fig5-84ff0ec794ee3f67.d: crates/experiments/src/bin/fig5.rs crates/experiments/src/bin/common/mod.rs

/root/repo/target/debug/deps/libfig5-84ff0ec794ee3f67.rmeta: crates/experiments/src/bin/fig5.rs crates/experiments/src/bin/common/mod.rs

crates/experiments/src/bin/fig5.rs:
crates/experiments/src/bin/common/mod.rs:
