/root/repo/target/debug/deps/workspace_api-8f569eea76bcfc46.d: tests/workspace_api.rs Cargo.toml

/root/repo/target/debug/deps/libworkspace_api-8f569eea76bcfc46.rmeta: tests/workspace_api.rs Cargo.toml

tests/workspace_api.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
