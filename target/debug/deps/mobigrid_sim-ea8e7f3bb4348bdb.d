/root/repo/target/debug/deps/mobigrid_sim-ea8e7f3bb4348bdb.d: crates/sim/src/lib.rs crates/sim/src/engine.rs crates/sim/src/par.rs crates/sim/src/queue.rs crates/sim/src/rng.rs crates/sim/src/stats.rs crates/sim/src/stepper.rs crates/sim/src/time.rs

/root/repo/target/debug/deps/libmobigrid_sim-ea8e7f3bb4348bdb.rlib: crates/sim/src/lib.rs crates/sim/src/engine.rs crates/sim/src/par.rs crates/sim/src/queue.rs crates/sim/src/rng.rs crates/sim/src/stats.rs crates/sim/src/stepper.rs crates/sim/src/time.rs

/root/repo/target/debug/deps/libmobigrid_sim-ea8e7f3bb4348bdb.rmeta: crates/sim/src/lib.rs crates/sim/src/engine.rs crates/sim/src/par.rs crates/sim/src/queue.rs crates/sim/src/rng.rs crates/sim/src/stats.rs crates/sim/src/stepper.rs crates/sim/src/time.rs

crates/sim/src/lib.rs:
crates/sim/src/engine.rs:
crates/sim/src/par.rs:
crates/sim/src/queue.rs:
crates/sim/src/rng.rs:
crates/sim/src/stats.rs:
crates/sim/src/stepper.rs:
crates/sim/src/time.rs:
