/root/repo/target/debug/deps/mobigrid_wireless-2202cf123fea17ad.d: crates/wireless/src/lib.rs crates/wireless/src/energy.rs crates/wireless/src/error.rs crates/wireless/src/gateway.rs crates/wireless/src/message.rs crates/wireless/src/network.rs crates/wireless/src/outage.rs crates/wireless/src/traffic.rs

/root/repo/target/debug/deps/libmobigrid_wireless-2202cf123fea17ad.rlib: crates/wireless/src/lib.rs crates/wireless/src/energy.rs crates/wireless/src/error.rs crates/wireless/src/gateway.rs crates/wireless/src/message.rs crates/wireless/src/network.rs crates/wireless/src/outage.rs crates/wireless/src/traffic.rs

/root/repo/target/debug/deps/libmobigrid_wireless-2202cf123fea17ad.rmeta: crates/wireless/src/lib.rs crates/wireless/src/energy.rs crates/wireless/src/error.rs crates/wireless/src/gateway.rs crates/wireless/src/message.rs crates/wireless/src/network.rs crates/wireless/src/outage.rs crates/wireless/src/traffic.rs

crates/wireless/src/lib.rs:
crates/wireless/src/energy.rs:
crates/wireless/src/error.rs:
crates/wireless/src/gateway.rs:
crates/wireless/src/message.rs:
crates/wireless/src/network.rs:
crates/wireless/src/outage.rs:
crates/wireless/src/traffic.rs:
