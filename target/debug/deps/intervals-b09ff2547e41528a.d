/root/repo/target/debug/deps/intervals-b09ff2547e41528a.d: crates/experiments/src/bin/intervals.rs crates/experiments/src/bin/common/mod.rs Cargo.toml

/root/repo/target/debug/deps/libintervals-b09ff2547e41528a.rmeta: crates/experiments/src/bin/intervals.rs crates/experiments/src/bin/common/mod.rs Cargo.toml

crates/experiments/src/bin/intervals.rs:
crates/experiments/src/bin/common/mod.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
