/root/repo/target/debug/deps/fig7-6e8fb4907cd8a904.d: crates/experiments/src/bin/fig7.rs crates/experiments/src/bin/common/mod.rs

/root/repo/target/debug/deps/libfig7-6e8fb4907cd8a904.rmeta: crates/experiments/src/bin/fig7.rs crates/experiments/src/bin/common/mod.rs

crates/experiments/src/bin/fig7.rs:
crates/experiments/src/bin/common/mod.rs:
