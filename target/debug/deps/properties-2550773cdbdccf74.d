/root/repo/target/debug/deps/properties-2550773cdbdccf74.d: crates/cluster/tests/properties.rs

/root/repo/target/debug/deps/libproperties-2550773cdbdccf74.rmeta: crates/cluster/tests/properties.rs

crates/cluster/tests/properties.rs:
