/root/repo/target/debug/deps/ddm-9242846fa341fe31.d: crates/hla/tests/ddm.rs Cargo.toml

/root/repo/target/debug/deps/libddm-9242846fa341fe31.rmeta: crates/hla/tests/ddm.rs Cargo.toml

crates/hla/tests/ddm.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
