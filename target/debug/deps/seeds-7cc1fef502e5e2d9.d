/root/repo/target/debug/deps/seeds-7cc1fef502e5e2d9.d: crates/experiments/src/bin/seeds.rs crates/experiments/src/bin/common/mod.rs

/root/repo/target/debug/deps/libseeds-7cc1fef502e5e2d9.rmeta: crates/experiments/src/bin/seeds.rs crates/experiments/src/bin/common/mod.rs

crates/experiments/src/bin/seeds.rs:
crates/experiments/src/bin/common/mod.rs:
