/root/repo/target/debug/deps/mobigrid_bench-c2c693893640f0ed.d: crates/bench/src/lib.rs

/root/repo/target/debug/deps/libmobigrid_bench-c2c693893640f0ed.rmeta: crates/bench/src/lib.rs

crates/bench/src/lib.rs:
