/root/repo/target/debug/deps/serde_derive-7e5866689b5e40ff.d: /tmp/stubs/serde_derive/src/lib.rs

/root/repo/target/debug/deps/libserde_derive-7e5866689b5e40ff.so: /tmp/stubs/serde_derive/src/lib.rs

/tmp/stubs/serde_derive/src/lib.rs:
