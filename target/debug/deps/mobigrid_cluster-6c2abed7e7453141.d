/root/repo/target/debug/deps/mobigrid_cluster-6c2abed7e7453141.d: crates/cluster/src/lib.rs crates/cluster/src/bsas.rs crates/cluster/src/clustering.rs crates/cluster/src/distance.rs crates/cluster/src/kmeans.rs

/root/repo/target/debug/deps/libmobigrid_cluster-6c2abed7e7453141.rmeta: crates/cluster/src/lib.rs crates/cluster/src/bsas.rs crates/cluster/src/clustering.rs crates/cluster/src/distance.rs crates/cluster/src/kmeans.rs

crates/cluster/src/lib.rs:
crates/cluster/src/bsas.rs:
crates/cluster/src/clustering.rs:
crates/cluster/src/distance.rs:
crates/cluster/src/kmeans.rs:
