/root/repo/target/debug/deps/intervals-23442116a87fe820.d: crates/experiments/src/bin/intervals.rs crates/experiments/src/bin/common/mod.rs

/root/repo/target/debug/deps/intervals-23442116a87fe820: crates/experiments/src/bin/intervals.rs crates/experiments/src/bin/common/mod.rs

crates/experiments/src/bin/intervals.rs:
crates/experiments/src/bin/common/mod.rs:
