/root/repo/target/debug/deps/scalability-971207340e8be2fb.d: crates/experiments/src/bin/scalability.rs crates/experiments/src/bin/common/mod.rs

/root/repo/target/debug/deps/scalability-971207340e8be2fb: crates/experiments/src/bin/scalability.rs crates/experiments/src/bin/common/mod.rs

crates/experiments/src/bin/scalability.rs:
crates/experiments/src/bin/common/mod.rs:
