/root/repo/target/debug/deps/fig8-56c9a470108831dc.d: crates/experiments/src/bin/fig8.rs crates/experiments/src/bin/common/mod.rs Cargo.toml

/root/repo/target/debug/deps/libfig8-56c9a470108831dc.rmeta: crates/experiments/src/bin/fig8.rs crates/experiments/src/bin/common/mod.rs Cargo.toml

crates/experiments/src/bin/fig8.rs:
crates/experiments/src/bin/common/mod.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
