/root/repo/target/debug/deps/end_to_end-c93bf695a75d2674.d: tests/end_to_end.rs

/root/repo/target/debug/deps/libend_to_end-c93bf695a75d2674.rmeta: tests/end_to_end.rs

tests/end_to_end.rs:
