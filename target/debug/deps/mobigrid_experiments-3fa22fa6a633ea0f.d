/root/repo/target/debug/deps/mobigrid_experiments-3fa22fa6a633ea0f.d: crates/experiments/src/lib.rs crates/experiments/src/campaign.rs crates/experiments/src/config.rs crates/experiments/src/extensions.rs crates/experiments/src/federated.rs crates/experiments/src/intervals.rs crates/experiments/src/fig4.rs crates/experiments/src/fig5.rs crates/experiments/src/fig6.rs crates/experiments/src/fig7.rs crates/experiments/src/fig89.rs crates/experiments/src/report.rs crates/experiments/src/robustness.rs crates/experiments/src/scalability.rs crates/experiments/src/table1.rs crates/experiments/src/workload.rs Cargo.toml

/root/repo/target/debug/deps/libmobigrid_experiments-3fa22fa6a633ea0f.rmeta: crates/experiments/src/lib.rs crates/experiments/src/campaign.rs crates/experiments/src/config.rs crates/experiments/src/extensions.rs crates/experiments/src/federated.rs crates/experiments/src/intervals.rs crates/experiments/src/fig4.rs crates/experiments/src/fig5.rs crates/experiments/src/fig6.rs crates/experiments/src/fig7.rs crates/experiments/src/fig89.rs crates/experiments/src/report.rs crates/experiments/src/robustness.rs crates/experiments/src/scalability.rs crates/experiments/src/table1.rs crates/experiments/src/workload.rs Cargo.toml

crates/experiments/src/lib.rs:
crates/experiments/src/campaign.rs:
crates/experiments/src/config.rs:
crates/experiments/src/extensions.rs:
crates/experiments/src/federated.rs:
crates/experiments/src/intervals.rs:
crates/experiments/src/fig4.rs:
crates/experiments/src/fig5.rs:
crates/experiments/src/fig6.rs:
crates/experiments/src/fig7.rs:
crates/experiments/src/fig89.rs:
crates/experiments/src/report.rs:
crates/experiments/src/robustness.rs:
crates/experiments/src/scalability.rs:
crates/experiments/src/table1.rs:
crates/experiments/src/workload.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
