/root/repo/target/debug/deps/mobigrid-3dd1707aa87f918c.d: src/lib.rs

/root/repo/target/debug/deps/libmobigrid-3dd1707aa87f918c.rmeta: src/lib.rs

src/lib.rs:
