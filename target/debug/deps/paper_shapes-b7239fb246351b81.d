/root/repo/target/debug/deps/paper_shapes-b7239fb246351b81.d: tests/paper_shapes.rs

/root/repo/target/debug/deps/paper_shapes-b7239fb246351b81: tests/paper_shapes.rs

tests/paper_shapes.rs:
