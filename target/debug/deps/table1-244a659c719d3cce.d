/root/repo/target/debug/deps/table1-244a659c719d3cce.d: crates/experiments/src/bin/table1.rs Cargo.toml

/root/repo/target/debug/deps/libtable1-244a659c719d3cce.rmeta: crates/experiments/src/bin/table1.rs Cargo.toml

crates/experiments/src/bin/table1.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
