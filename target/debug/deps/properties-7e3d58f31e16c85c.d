/root/repo/target/debug/deps/properties-7e3d58f31e16c85c.d: crates/cluster/tests/properties.rs Cargo.toml

/root/repo/target/debug/deps/libproperties-7e3d58f31e16c85c.rmeta: crates/cluster/tests/properties.rs Cargo.toml

crates/cluster/tests/properties.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
