/root/repo/target/debug/deps/fig4-4801bf710f6b31ff.d: crates/experiments/src/bin/fig4.rs crates/experiments/src/bin/common/mod.rs

/root/repo/target/debug/deps/libfig4-4801bf710f6b31ff.rmeta: crates/experiments/src/bin/fig4.rs crates/experiments/src/bin/common/mod.rs

crates/experiments/src/bin/fig4.rs:
crates/experiments/src/bin/common/mod.rs:
