/root/repo/target/debug/deps/hla_pipeline-788b10902b34b318.d: tests/hla_pipeline.rs

/root/repo/target/debug/deps/hla_pipeline-788b10902b34b318: tests/hla_pipeline.rs

tests/hla_pipeline.rs:
