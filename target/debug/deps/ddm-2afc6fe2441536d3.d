/root/repo/target/debug/deps/ddm-2afc6fe2441536d3.d: crates/hla/tests/ddm.rs

/root/repo/target/debug/deps/ddm-2afc6fe2441536d3: crates/hla/tests/ddm.rs

crates/hla/tests/ddm.rs:
