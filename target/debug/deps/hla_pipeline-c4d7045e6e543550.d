/root/repo/target/debug/deps/hla_pipeline-c4d7045e6e543550.d: tests/hla_pipeline.rs Cargo.toml

/root/repo/target/debug/deps/libhla_pipeline-c4d7045e6e543550.rmeta: tests/hla_pipeline.rs Cargo.toml

tests/hla_pipeline.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
