/root/repo/target/debug/deps/workspace_api-ba3650f07a76e310.d: tests/workspace_api.rs

/root/repo/target/debug/deps/workspace_api-ba3650f07a76e310: tests/workspace_api.rs

tests/workspace_api.rs:
