/root/repo/target/debug/deps/fig6-994caad375e6e5f7.d: crates/experiments/src/bin/fig6.rs crates/experiments/src/bin/common/mod.rs

/root/repo/target/debug/deps/fig6-994caad375e6e5f7: crates/experiments/src/bin/fig6.rs crates/experiments/src/bin/common/mod.rs

crates/experiments/src/bin/fig6.rs:
crates/experiments/src/bin/common/mod.rs:
