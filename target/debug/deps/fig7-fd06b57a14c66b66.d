/root/repo/target/debug/deps/fig7-fd06b57a14c66b66.d: crates/experiments/src/bin/fig7.rs crates/experiments/src/bin/common/mod.rs

/root/repo/target/debug/deps/libfig7-fd06b57a14c66b66.rmeta: crates/experiments/src/bin/fig7.rs crates/experiments/src/bin/common/mod.rs

crates/experiments/src/bin/fig7.rs:
crates/experiments/src/bin/common/mod.rs:
