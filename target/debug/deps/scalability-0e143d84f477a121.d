/root/repo/target/debug/deps/scalability-0e143d84f477a121.d: crates/experiments/src/bin/scalability.rs crates/experiments/src/bin/common/mod.rs Cargo.toml

/root/repo/target/debug/deps/libscalability-0e143d84f477a121.rmeta: crates/experiments/src/bin/scalability.rs crates/experiments/src/bin/common/mod.rs Cargo.toml

crates/experiments/src/bin/scalability.rs:
crates/experiments/src/bin/common/mod.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
