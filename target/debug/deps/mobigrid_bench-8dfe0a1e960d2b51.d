/root/repo/target/debug/deps/mobigrid_bench-8dfe0a1e960d2b51.d: crates/bench/src/lib.rs

/root/repo/target/debug/deps/mobigrid_bench-8dfe0a1e960d2b51: crates/bench/src/lib.rs

crates/bench/src/lib.rs:
