/root/repo/target/debug/deps/properties-9bbef6d00cb7fd70.d: crates/sim/tests/properties.rs

/root/repo/target/debug/deps/properties-9bbef6d00cb7fd70: crates/sim/tests/properties.rs

crates/sim/tests/properties.rs:
