/root/repo/target/debug/deps/scalability-183705d22b0ae4c7.d: crates/experiments/src/bin/scalability.rs crates/experiments/src/bin/common/mod.rs

/root/repo/target/debug/deps/scalability-183705d22b0ae4c7: crates/experiments/src/bin/scalability.rs crates/experiments/src/bin/common/mod.rs

crates/experiments/src/bin/scalability.rs:
crates/experiments/src/bin/common/mod.rs:
