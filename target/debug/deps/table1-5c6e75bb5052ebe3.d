/root/repo/target/debug/deps/table1-5c6e75bb5052ebe3.d: crates/experiments/src/bin/table1.rs

/root/repo/target/debug/deps/table1-5c6e75bb5052ebe3: crates/experiments/src/bin/table1.rs

crates/experiments/src/bin/table1.rs:
