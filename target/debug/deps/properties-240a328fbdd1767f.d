/root/repo/target/debug/deps/properties-240a328fbdd1767f.d: crates/wireless/tests/properties.rs

/root/repo/target/debug/deps/properties-240a328fbdd1767f: crates/wireless/tests/properties.rs

crates/wireless/tests/properties.rs:
