/root/repo/target/debug/deps/scalability-b1d48992759e99de.d: crates/experiments/src/bin/scalability.rs crates/experiments/src/bin/common/mod.rs

/root/repo/target/debug/deps/libscalability-b1d48992759e99de.rmeta: crates/experiments/src/bin/scalability.rs crates/experiments/src/bin/common/mod.rs

crates/experiments/src/bin/scalability.rs:
crates/experiments/src/bin/common/mod.rs:
