/root/repo/target/debug/deps/fig7-f0c3823f64f8aae2.d: crates/experiments/src/bin/fig7.rs crates/experiments/src/bin/common/mod.rs

/root/repo/target/debug/deps/fig7-f0c3823f64f8aae2: crates/experiments/src/bin/fig7.rs crates/experiments/src/bin/common/mod.rs

crates/experiments/src/bin/fig7.rs:
crates/experiments/src/bin/common/mod.rs:
