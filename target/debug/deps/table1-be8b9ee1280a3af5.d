/root/repo/target/debug/deps/table1-be8b9ee1280a3af5.d: crates/experiments/src/bin/table1.rs

/root/repo/target/debug/deps/libtable1-be8b9ee1280a3af5.rmeta: crates/experiments/src/bin/table1.rs

crates/experiments/src/bin/table1.rs:
