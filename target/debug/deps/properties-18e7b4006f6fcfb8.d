/root/repo/target/debug/deps/properties-18e7b4006f6fcfb8.d: crates/forecast/tests/properties.rs Cargo.toml

/root/repo/target/debug/deps/libproperties-18e7b4006f6fcfb8.rmeta: crates/forecast/tests/properties.rs Cargo.toml

crates/forecast/tests/properties.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
