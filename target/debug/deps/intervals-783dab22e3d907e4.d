/root/repo/target/debug/deps/intervals-783dab22e3d907e4.d: crates/experiments/src/bin/intervals.rs crates/experiments/src/bin/common/mod.rs Cargo.toml

/root/repo/target/debug/deps/libintervals-783dab22e3d907e4.rmeta: crates/experiments/src/bin/intervals.rs crates/experiments/src/bin/common/mod.rs Cargo.toml

crates/experiments/src/bin/intervals.rs:
crates/experiments/src/bin/common/mod.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
