/root/repo/target/debug/deps/fig4-e75dfa8c19da93de.d: crates/experiments/src/bin/fig4.rs crates/experiments/src/bin/common/mod.rs

/root/repo/target/debug/deps/fig4-e75dfa8c19da93de: crates/experiments/src/bin/fig4.rs crates/experiments/src/bin/common/mod.rs

crates/experiments/src/bin/fig4.rs:
crates/experiments/src/bin/common/mod.rs:
