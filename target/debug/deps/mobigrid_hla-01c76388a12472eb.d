/root/repo/target/debug/deps/mobigrid_hla-01c76388a12472eb.d: crates/hla/src/lib.rs crates/hla/src/callback.rs crates/hla/src/error.rs crates/hla/src/federation.rs crates/hla/src/fom.rs crates/hla/src/handles.rs crates/hla/src/region.rs crates/hla/src/rti.rs crates/hla/src/time.rs crates/hla/src/time_mgmt.rs

/root/repo/target/debug/deps/libmobigrid_hla-01c76388a12472eb.rmeta: crates/hla/src/lib.rs crates/hla/src/callback.rs crates/hla/src/error.rs crates/hla/src/federation.rs crates/hla/src/fom.rs crates/hla/src/handles.rs crates/hla/src/region.rs crates/hla/src/rti.rs crates/hla/src/time.rs crates/hla/src/time_mgmt.rs

crates/hla/src/lib.rs:
crates/hla/src/callback.rs:
crates/hla/src/error.rs:
crates/hla/src/federation.rs:
crates/hla/src/fom.rs:
crates/hla/src/handles.rs:
crates/hla/src/region.rs:
crates/hla/src/rti.rs:
crates/hla/src/time.rs:
crates/hla/src/time_mgmt.rs:
