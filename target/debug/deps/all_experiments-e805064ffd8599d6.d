/root/repo/target/debug/deps/all_experiments-e805064ffd8599d6.d: crates/experiments/src/bin/all_experiments.rs crates/experiments/src/bin/common/mod.rs

/root/repo/target/debug/deps/liball_experiments-e805064ffd8599d6.rmeta: crates/experiments/src/bin/all_experiments.rs crates/experiments/src/bin/common/mod.rs

crates/experiments/src/bin/all_experiments.rs:
crates/experiments/src/bin/common/mod.rs:
