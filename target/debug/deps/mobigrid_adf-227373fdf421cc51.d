/root/repo/target/debug/deps/mobigrid_adf-227373fdf421cc51.d: crates/adf/src/lib.rs crates/adf/src/broker.rs crates/adf/src/classifier.rs crates/adf/src/config.rs crates/adf/src/filter.rs crates/adf/src/node.rs crates/adf/src/pipeline.rs crates/adf/src/policy.rs crates/adf/src/stats.rs

/root/repo/target/debug/deps/libmobigrid_adf-227373fdf421cc51.rlib: crates/adf/src/lib.rs crates/adf/src/broker.rs crates/adf/src/classifier.rs crates/adf/src/config.rs crates/adf/src/filter.rs crates/adf/src/node.rs crates/adf/src/pipeline.rs crates/adf/src/policy.rs crates/adf/src/stats.rs

/root/repo/target/debug/deps/libmobigrid_adf-227373fdf421cc51.rmeta: crates/adf/src/lib.rs crates/adf/src/broker.rs crates/adf/src/classifier.rs crates/adf/src/config.rs crates/adf/src/filter.rs crates/adf/src/node.rs crates/adf/src/pipeline.rs crates/adf/src/policy.rs crates/adf/src/stats.rs

crates/adf/src/lib.rs:
crates/adf/src/broker.rs:
crates/adf/src/classifier.rs:
crates/adf/src/config.rs:
crates/adf/src/filter.rs:
crates/adf/src/node.rs:
crates/adf/src/pipeline.rs:
crates/adf/src/policy.rs:
crates/adf/src/stats.rs:
