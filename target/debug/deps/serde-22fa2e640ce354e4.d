/root/repo/target/debug/deps/serde-22fa2e640ce354e4.d: /tmp/stubs/serde/src/lib.rs

/root/repo/target/debug/deps/libserde-22fa2e640ce354e4.rlib: /tmp/stubs/serde/src/lib.rs

/root/repo/target/debug/deps/libserde-22fa2e640ce354e4.rmeta: /tmp/stubs/serde/src/lib.rs

/tmp/stubs/serde/src/lib.rs:
