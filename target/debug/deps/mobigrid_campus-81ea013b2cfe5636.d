/root/repo/target/debug/deps/mobigrid_campus-81ea013b2cfe5636.d: crates/campus/src/lib.rs crates/campus/src/campus.rs crates/campus/src/error.rs crates/campus/src/graph.rs crates/campus/src/grid_city.rs crates/campus/src/inha.rs crates/campus/src/region.rs Cargo.toml

/root/repo/target/debug/deps/libmobigrid_campus-81ea013b2cfe5636.rmeta: crates/campus/src/lib.rs crates/campus/src/campus.rs crates/campus/src/error.rs crates/campus/src/graph.rs crates/campus/src/grid_city.rs crates/campus/src/inha.rs crates/campus/src/region.rs Cargo.toml

crates/campus/src/lib.rs:
crates/campus/src/campus.rs:
crates/campus/src/error.rs:
crates/campus/src/graph.rs:
crates/campus/src/grid_city.rs:
crates/campus/src/inha.rs:
crates/campus/src/region.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
