/root/repo/target/debug/deps/properties-4d1e22c3e4721c6f.d: crates/mobility/tests/properties.rs Cargo.toml

/root/repo/target/debug/deps/libproperties-4d1e22c3e4721c6f.rmeta: crates/mobility/tests/properties.rs Cargo.toml

crates/mobility/tests/properties.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
