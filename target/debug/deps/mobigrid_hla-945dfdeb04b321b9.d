/root/repo/target/debug/deps/mobigrid_hla-945dfdeb04b321b9.d: crates/hla/src/lib.rs crates/hla/src/callback.rs crates/hla/src/error.rs crates/hla/src/federation.rs crates/hla/src/fom.rs crates/hla/src/handles.rs crates/hla/src/region.rs crates/hla/src/rti.rs crates/hla/src/time.rs crates/hla/src/time_mgmt.rs Cargo.toml

/root/repo/target/debug/deps/libmobigrid_hla-945dfdeb04b321b9.rmeta: crates/hla/src/lib.rs crates/hla/src/callback.rs crates/hla/src/error.rs crates/hla/src/federation.rs crates/hla/src/fom.rs crates/hla/src/handles.rs crates/hla/src/region.rs crates/hla/src/rti.rs crates/hla/src/time.rs crates/hla/src/time_mgmt.rs Cargo.toml

crates/hla/src/lib.rs:
crates/hla/src/callback.rs:
crates/hla/src/error.rs:
crates/hla/src/federation.rs:
crates/hla/src/fom.rs:
crates/hla/src/handles.rs:
crates/hla/src/region.rs:
crates/hla/src/rti.rs:
crates/hla/src/time.rs:
crates/hla/src/time_mgmt.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
