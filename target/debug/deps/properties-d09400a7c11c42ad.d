/root/repo/target/debug/deps/properties-d09400a7c11c42ad.d: crates/sim/tests/properties.rs

/root/repo/target/debug/deps/properties-d09400a7c11c42ad: crates/sim/tests/properties.rs

crates/sim/tests/properties.rs:
