/root/repo/target/debug/deps/mobigrid_sim-d88ca64e1d3e3bec.d: crates/sim/src/lib.rs crates/sim/src/engine.rs crates/sim/src/par.rs crates/sim/src/queue.rs crates/sim/src/rng.rs crates/sim/src/stats.rs crates/sim/src/stepper.rs crates/sim/src/time.rs

/root/repo/target/debug/deps/libmobigrid_sim-d88ca64e1d3e3bec.rmeta: crates/sim/src/lib.rs crates/sim/src/engine.rs crates/sim/src/par.rs crates/sim/src/queue.rs crates/sim/src/rng.rs crates/sim/src/stats.rs crates/sim/src/stepper.rs crates/sim/src/time.rs

crates/sim/src/lib.rs:
crates/sim/src/engine.rs:
crates/sim/src/par.rs:
crates/sim/src/queue.rs:
crates/sim/src/rng.rs:
crates/sim/src/stats.rs:
crates/sim/src/stepper.rs:
crates/sim/src/time.rs:
