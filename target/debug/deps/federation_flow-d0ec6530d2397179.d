/root/repo/target/debug/deps/federation_flow-d0ec6530d2397179.d: crates/hla/tests/federation_flow.rs

/root/repo/target/debug/deps/federation_flow-d0ec6530d2397179: crates/hla/tests/federation_flow.rs

crates/hla/tests/federation_flow.rs:
