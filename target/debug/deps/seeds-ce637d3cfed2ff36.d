/root/repo/target/debug/deps/seeds-ce637d3cfed2ff36.d: crates/experiments/src/bin/seeds.rs crates/experiments/src/bin/common/mod.rs

/root/repo/target/debug/deps/seeds-ce637d3cfed2ff36: crates/experiments/src/bin/seeds.rs crates/experiments/src/bin/common/mod.rs

crates/experiments/src/bin/seeds.rs:
crates/experiments/src/bin/common/mod.rs:
