/root/repo/target/debug/deps/mobigrid-bd63751c5b5855c0.d: src/lib.rs

/root/repo/target/debug/deps/mobigrid-bd63751c5b5855c0: src/lib.rs

src/lib.rs:
