/root/repo/target/debug/deps/serde-59b40c24f9b238b1.d: /tmp/stubs/serde/src/lib.rs

/root/repo/target/debug/deps/libserde-59b40c24f9b238b1.rmeta: /tmp/stubs/serde/src/lib.rs

/tmp/stubs/serde/src/lib.rs:
