/root/repo/target/debug/deps/micro-c2fffdb88969d906.d: crates/bench/benches/micro.rs Cargo.toml

/root/repo/target/debug/deps/libmicro-c2fffdb88969d906.rmeta: crates/bench/benches/micro.rs Cargo.toml

crates/bench/benches/micro.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
