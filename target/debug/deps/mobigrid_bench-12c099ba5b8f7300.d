/root/repo/target/debug/deps/mobigrid_bench-12c099ba5b8f7300.d: crates/bench/src/lib.rs

/root/repo/target/debug/deps/mobigrid_bench-12c099ba5b8f7300: crates/bench/src/lib.rs

crates/bench/src/lib.rs:
