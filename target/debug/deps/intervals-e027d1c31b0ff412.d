/root/repo/target/debug/deps/intervals-e027d1c31b0ff412.d: crates/experiments/src/bin/intervals.rs crates/experiments/src/bin/common/mod.rs

/root/repo/target/debug/deps/libintervals-e027d1c31b0ff412.rmeta: crates/experiments/src/bin/intervals.rs crates/experiments/src/bin/common/mod.rs

crates/experiments/src/bin/intervals.rs:
crates/experiments/src/bin/common/mod.rs:
