/root/repo/target/debug/deps/seeds-18f5a8106de77776.d: crates/experiments/src/bin/seeds.rs crates/experiments/src/bin/common/mod.rs

/root/repo/target/debug/deps/seeds-18f5a8106de77776: crates/experiments/src/bin/seeds.rs crates/experiments/src/bin/common/mod.rs

crates/experiments/src/bin/seeds.rs:
crates/experiments/src/bin/common/mod.rs:
