/root/repo/target/debug/deps/extensions-881f4b4b6771100f.d: crates/experiments/src/bin/extensions.rs crates/experiments/src/bin/common/mod.rs

/root/repo/target/debug/deps/libextensions-881f4b4b6771100f.rmeta: crates/experiments/src/bin/extensions.rs crates/experiments/src/bin/common/mod.rs

crates/experiments/src/bin/extensions.rs:
crates/experiments/src/bin/common/mod.rs:
