/root/repo/target/debug/deps/fig8-a313a06d63bda5d1.d: crates/experiments/src/bin/fig8.rs crates/experiments/src/bin/common/mod.rs

/root/repo/target/debug/deps/libfig8-a313a06d63bda5d1.rmeta: crates/experiments/src/bin/fig8.rs crates/experiments/src/bin/common/mod.rs

crates/experiments/src/bin/fig8.rs:
crates/experiments/src/bin/common/mod.rs:
