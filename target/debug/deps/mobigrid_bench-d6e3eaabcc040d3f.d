/root/repo/target/debug/deps/mobigrid_bench-d6e3eaabcc040d3f.d: crates/bench/src/lib.rs Cargo.toml

/root/repo/target/debug/deps/libmobigrid_bench-d6e3eaabcc040d3f.rmeta: crates/bench/src/lib.rs Cargo.toml

crates/bench/src/lib.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
