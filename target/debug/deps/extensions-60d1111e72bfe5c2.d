/root/repo/target/debug/deps/extensions-60d1111e72bfe5c2.d: crates/experiments/src/bin/extensions.rs crates/experiments/src/bin/common/mod.rs

/root/repo/target/debug/deps/libextensions-60d1111e72bfe5c2.rmeta: crates/experiments/src/bin/extensions.rs crates/experiments/src/bin/common/mod.rs

crates/experiments/src/bin/extensions.rs:
crates/experiments/src/bin/common/mod.rs:
