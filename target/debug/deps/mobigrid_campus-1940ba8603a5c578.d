/root/repo/target/debug/deps/mobigrid_campus-1940ba8603a5c578.d: crates/campus/src/lib.rs crates/campus/src/campus.rs crates/campus/src/error.rs crates/campus/src/graph.rs crates/campus/src/grid_city.rs crates/campus/src/inha.rs crates/campus/src/region.rs

/root/repo/target/debug/deps/libmobigrid_campus-1940ba8603a5c578.rmeta: crates/campus/src/lib.rs crates/campus/src/campus.rs crates/campus/src/error.rs crates/campus/src/graph.rs crates/campus/src/grid_city.rs crates/campus/src/inha.rs crates/campus/src/region.rs

crates/campus/src/lib.rs:
crates/campus/src/campus.rs:
crates/campus/src/error.rs:
crates/campus/src/graph.rs:
crates/campus/src/grid_city.rs:
crates/campus/src/inha.rs:
crates/campus/src/region.rs:
