/root/repo/target/debug/deps/parking_lot-77fad2035309079e.d: /tmp/stubs/parking_lot/src/lib.rs

/root/repo/target/debug/deps/libparking_lot-77fad2035309079e.rlib: /tmp/stubs/parking_lot/src/lib.rs

/root/repo/target/debug/deps/libparking_lot-77fad2035309079e.rmeta: /tmp/stubs/parking_lot/src/lib.rs

/tmp/stubs/parking_lot/src/lib.rs:
