/root/repo/target/debug/deps/fig8-601d2a37603111cb.d: crates/experiments/src/bin/fig8.rs crates/experiments/src/bin/common/mod.rs Cargo.toml

/root/repo/target/debug/deps/libfig8-601d2a37603111cb.rmeta: crates/experiments/src/bin/fig8.rs crates/experiments/src/bin/common/mod.rs Cargo.toml

crates/experiments/src/bin/fig8.rs:
crates/experiments/src/bin/common/mod.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
