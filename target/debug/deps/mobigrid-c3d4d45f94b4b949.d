/root/repo/target/debug/deps/mobigrid-c3d4d45f94b4b949.d: src/lib.rs Cargo.toml

/root/repo/target/debug/deps/libmobigrid-c3d4d45f94b4b949.rmeta: src/lib.rs Cargo.toml

src/lib.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
