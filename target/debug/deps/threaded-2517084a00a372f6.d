/root/repo/target/debug/deps/threaded-2517084a00a372f6.d: crates/hla/tests/threaded.rs

/root/repo/target/debug/deps/threaded-2517084a00a372f6: crates/hla/tests/threaded.rs

crates/hla/tests/threaded.rs:
