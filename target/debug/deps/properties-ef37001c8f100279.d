/root/repo/target/debug/deps/properties-ef37001c8f100279.d: crates/adf/tests/properties.rs

/root/repo/target/debug/deps/libproperties-ef37001c8f100279.rmeta: crates/adf/tests/properties.rs

crates/adf/tests/properties.rs:
