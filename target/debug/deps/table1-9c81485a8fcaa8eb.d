/root/repo/target/debug/deps/table1-9c81485a8fcaa8eb.d: crates/experiments/src/bin/table1.rs

/root/repo/target/debug/deps/table1-9c81485a8fcaa8eb: crates/experiments/src/bin/table1.rs

crates/experiments/src/bin/table1.rs:
