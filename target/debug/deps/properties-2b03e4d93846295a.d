/root/repo/target/debug/deps/properties-2b03e4d93846295a.d: crates/adf/tests/properties.rs Cargo.toml

/root/repo/target/debug/deps/libproperties-2b03e4d93846295a.rmeta: crates/adf/tests/properties.rs Cargo.toml

crates/adf/tests/properties.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
