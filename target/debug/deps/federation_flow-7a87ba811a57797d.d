/root/repo/target/debug/deps/federation_flow-7a87ba811a57797d.d: crates/hla/tests/federation_flow.rs Cargo.toml

/root/repo/target/debug/deps/libfederation_flow-7a87ba811a57797d.rmeta: crates/hla/tests/federation_flow.rs Cargo.toml

crates/hla/tests/federation_flow.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
