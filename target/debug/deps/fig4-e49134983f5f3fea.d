/root/repo/target/debug/deps/fig4-e49134983f5f3fea.d: crates/experiments/src/bin/fig4.rs crates/experiments/src/bin/common/mod.rs Cargo.toml

/root/repo/target/debug/deps/libfig4-e49134983f5f3fea.rmeta: crates/experiments/src/bin/fig4.rs crates/experiments/src/bin/common/mod.rs Cargo.toml

crates/experiments/src/bin/fig4.rs:
crates/experiments/src/bin/common/mod.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
