/root/repo/target/debug/deps/fig7-6fe4aa06c1899c7b.d: crates/experiments/src/bin/fig7.rs crates/experiments/src/bin/common/mod.rs

/root/repo/target/debug/deps/fig7-6fe4aa06c1899c7b: crates/experiments/src/bin/fig7.rs crates/experiments/src/bin/common/mod.rs

crates/experiments/src/bin/fig7.rs:
crates/experiments/src/bin/common/mod.rs:
