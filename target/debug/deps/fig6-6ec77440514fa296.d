/root/repo/target/debug/deps/fig6-6ec77440514fa296.d: crates/experiments/src/bin/fig6.rs crates/experiments/src/bin/common/mod.rs

/root/repo/target/debug/deps/fig6-6ec77440514fa296: crates/experiments/src/bin/fig6.rs crates/experiments/src/bin/common/mod.rs

crates/experiments/src/bin/fig6.rs:
crates/experiments/src/bin/common/mod.rs:
