/root/repo/target/debug/deps/mobigrid_bench-6d347aa060527cb1.d: crates/bench/src/lib.rs

/root/repo/target/debug/deps/libmobigrid_bench-6d347aa060527cb1.rmeta: crates/bench/src/lib.rs

crates/bench/src/lib.rs:
