/root/repo/target/debug/deps/mobigrid_mobility-64a99fcc495efb8c.d: crates/mobility/src/lib.rs crates/mobility/src/gauss_markov.rs crates/mobility/src/indoor.rs crates/mobility/src/linear.rs crates/mobility/src/model.rs crates/mobility/src/patrol.rs crates/mobility/src/pattern.rs crates/mobility/src/random_walk.rs crates/mobility/src/schedule.rs crates/mobility/src/stop.rs crates/mobility/src/trace.rs Cargo.toml

/root/repo/target/debug/deps/libmobigrid_mobility-64a99fcc495efb8c.rmeta: crates/mobility/src/lib.rs crates/mobility/src/gauss_markov.rs crates/mobility/src/indoor.rs crates/mobility/src/linear.rs crates/mobility/src/model.rs crates/mobility/src/patrol.rs crates/mobility/src/pattern.rs crates/mobility/src/random_walk.rs crates/mobility/src/schedule.rs crates/mobility/src/stop.rs crates/mobility/src/trace.rs Cargo.toml

crates/mobility/src/lib.rs:
crates/mobility/src/gauss_markov.rs:
crates/mobility/src/indoor.rs:
crates/mobility/src/linear.rs:
crates/mobility/src/model.rs:
crates/mobility/src/patrol.rs:
crates/mobility/src/pattern.rs:
crates/mobility/src/random_walk.rs:
crates/mobility/src/schedule.rs:
crates/mobility/src/stop.rs:
crates/mobility/src/trace.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
