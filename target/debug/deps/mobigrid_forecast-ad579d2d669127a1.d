/root/repo/target/debug/deps/mobigrid_forecast-ad579d2d669127a1.d: crates/forecast/src/lib.rs crates/forecast/src/ar.rs crates/forecast/src/brown.rs crates/forecast/src/error.rs crates/forecast/src/holt.rs crates/forecast/src/kalman.rs crates/forecast/src/lin.rs crates/forecast/src/metrics.rs crates/forecast/src/ses.rs crates/forecast/src/tracker.rs Cargo.toml

/root/repo/target/debug/deps/libmobigrid_forecast-ad579d2d669127a1.rmeta: crates/forecast/src/lib.rs crates/forecast/src/ar.rs crates/forecast/src/brown.rs crates/forecast/src/error.rs crates/forecast/src/holt.rs crates/forecast/src/kalman.rs crates/forecast/src/lin.rs crates/forecast/src/metrics.rs crates/forecast/src/ses.rs crates/forecast/src/tracker.rs Cargo.toml

crates/forecast/src/lib.rs:
crates/forecast/src/ar.rs:
crates/forecast/src/brown.rs:
crates/forecast/src/error.rs:
crates/forecast/src/holt.rs:
crates/forecast/src/kalman.rs:
crates/forecast/src/lin.rs:
crates/forecast/src/metrics.rs:
crates/forecast/src/ses.rs:
crates/forecast/src/tracker.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
