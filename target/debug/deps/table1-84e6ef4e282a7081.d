/root/repo/target/debug/deps/table1-84e6ef4e282a7081.d: crates/experiments/src/bin/table1.rs Cargo.toml

/root/repo/target/debug/deps/libtable1-84e6ef4e282a7081.rmeta: crates/experiments/src/bin/table1.rs Cargo.toml

crates/experiments/src/bin/table1.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
