/root/repo/target/debug/deps/all_experiments-6c5c038f41efa0d9.d: crates/experiments/src/bin/all_experiments.rs crates/experiments/src/bin/common/mod.rs

/root/repo/target/debug/deps/liball_experiments-6c5c038f41efa0d9.rmeta: crates/experiments/src/bin/all_experiments.rs crates/experiments/src/bin/common/mod.rs

crates/experiments/src/bin/all_experiments.rs:
crates/experiments/src/bin/common/mod.rs:
