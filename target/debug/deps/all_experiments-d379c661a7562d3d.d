/root/repo/target/debug/deps/all_experiments-d379c661a7562d3d.d: crates/experiments/src/bin/all_experiments.rs crates/experiments/src/bin/common/mod.rs

/root/repo/target/debug/deps/all_experiments-d379c661a7562d3d: crates/experiments/src/bin/all_experiments.rs crates/experiments/src/bin/common/mod.rs

crates/experiments/src/bin/all_experiments.rs:
crates/experiments/src/bin/common/mod.rs:
