/root/repo/target/debug/deps/mobigrid-8a56fd35beceb6dd.d: src/lib.rs

/root/repo/target/debug/deps/libmobigrid-8a56fd35beceb6dd.rmeta: src/lib.rs

src/lib.rs:
