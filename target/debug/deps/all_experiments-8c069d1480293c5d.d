/root/repo/target/debug/deps/all_experiments-8c069d1480293c5d.d: crates/experiments/src/bin/all_experiments.rs crates/experiments/src/bin/common/mod.rs

/root/repo/target/debug/deps/all_experiments-8c069d1480293c5d: crates/experiments/src/bin/all_experiments.rs crates/experiments/src/bin/common/mod.rs

crates/experiments/src/bin/all_experiments.rs:
crates/experiments/src/bin/common/mod.rs:
