/root/repo/target/debug/deps/fig4-99feb6327d14d654.d: crates/experiments/src/bin/fig4.rs crates/experiments/src/bin/common/mod.rs

/root/repo/target/debug/deps/fig4-99feb6327d14d654: crates/experiments/src/bin/fig4.rs crates/experiments/src/bin/common/mod.rs

crates/experiments/src/bin/fig4.rs:
crates/experiments/src/bin/common/mod.rs:
