/root/repo/target/debug/deps/fig5-1da8898d417bb781.d: crates/experiments/src/bin/fig5.rs crates/experiments/src/bin/common/mod.rs Cargo.toml

/root/repo/target/debug/deps/libfig5-1da8898d417bb781.rmeta: crates/experiments/src/bin/fig5.rs crates/experiments/src/bin/common/mod.rs Cargo.toml

crates/experiments/src/bin/fig5.rs:
crates/experiments/src/bin/common/mod.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
