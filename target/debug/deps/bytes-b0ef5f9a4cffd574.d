/root/repo/target/debug/deps/bytes-b0ef5f9a4cffd574.d: /tmp/stubs/bytes/src/lib.rs

/root/repo/target/debug/deps/libbytes-b0ef5f9a4cffd574.rlib: /tmp/stubs/bytes/src/lib.rs

/root/repo/target/debug/deps/libbytes-b0ef5f9a4cffd574.rmeta: /tmp/stubs/bytes/src/lib.rs

/tmp/stubs/bytes/src/lib.rs:
