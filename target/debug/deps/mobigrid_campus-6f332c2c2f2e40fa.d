/root/repo/target/debug/deps/mobigrid_campus-6f332c2c2f2e40fa.d: crates/campus/src/lib.rs crates/campus/src/campus.rs crates/campus/src/error.rs crates/campus/src/graph.rs crates/campus/src/grid_city.rs crates/campus/src/inha.rs crates/campus/src/region.rs

/root/repo/target/debug/deps/libmobigrid_campus-6f332c2c2f2e40fa.rlib: crates/campus/src/lib.rs crates/campus/src/campus.rs crates/campus/src/error.rs crates/campus/src/graph.rs crates/campus/src/grid_city.rs crates/campus/src/inha.rs crates/campus/src/region.rs

/root/repo/target/debug/deps/libmobigrid_campus-6f332c2c2f2e40fa.rmeta: crates/campus/src/lib.rs crates/campus/src/campus.rs crates/campus/src/error.rs crates/campus/src/graph.rs crates/campus/src/grid_city.rs crates/campus/src/inha.rs crates/campus/src/region.rs

crates/campus/src/lib.rs:
crates/campus/src/campus.rs:
crates/campus/src/error.rs:
crates/campus/src/graph.rs:
crates/campus/src/grid_city.rs:
crates/campus/src/inha.rs:
crates/campus/src/region.rs:
