/root/repo/target/debug/deps/mobigrid-db833ffe54412595.d: src/lib.rs Cargo.toml

/root/repo/target/debug/deps/libmobigrid-db833ffe54412595.rmeta: src/lib.rs Cargo.toml

src/lib.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
