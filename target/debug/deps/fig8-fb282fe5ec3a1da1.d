/root/repo/target/debug/deps/fig8-fb282fe5ec3a1da1.d: crates/experiments/src/bin/fig8.rs crates/experiments/src/bin/common/mod.rs

/root/repo/target/debug/deps/libfig8-fb282fe5ec3a1da1.rmeta: crates/experiments/src/bin/fig8.rs crates/experiments/src/bin/common/mod.rs

crates/experiments/src/bin/fig8.rs:
crates/experiments/src/bin/common/mod.rs:
