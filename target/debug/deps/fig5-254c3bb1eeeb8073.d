/root/repo/target/debug/deps/fig5-254c3bb1eeeb8073.d: crates/experiments/src/bin/fig5.rs crates/experiments/src/bin/common/mod.rs

/root/repo/target/debug/deps/libfig5-254c3bb1eeeb8073.rmeta: crates/experiments/src/bin/fig5.rs crates/experiments/src/bin/common/mod.rs

crates/experiments/src/bin/fig5.rs:
crates/experiments/src/bin/common/mod.rs:
