/root/repo/target/debug/deps/properties-663f7d45436e64e5.d: crates/forecast/tests/properties.rs

/root/repo/target/debug/deps/libproperties-663f7d45436e64e5.rmeta: crates/forecast/tests/properties.rs

crates/forecast/tests/properties.rs:
