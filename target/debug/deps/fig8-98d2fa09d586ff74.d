/root/repo/target/debug/deps/fig8-98d2fa09d586ff74.d: crates/experiments/src/bin/fig8.rs crates/experiments/src/bin/common/mod.rs

/root/repo/target/debug/deps/libfig8-98d2fa09d586ff74.rmeta: crates/experiments/src/bin/fig8.rs crates/experiments/src/bin/common/mod.rs

crates/experiments/src/bin/fig8.rs:
crates/experiments/src/bin/common/mod.rs:
