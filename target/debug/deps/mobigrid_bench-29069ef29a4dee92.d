/root/repo/target/debug/deps/mobigrid_bench-29069ef29a4dee92.d: crates/bench/src/lib.rs

/root/repo/target/debug/deps/libmobigrid_bench-29069ef29a4dee92.rmeta: crates/bench/src/lib.rs

crates/bench/src/lib.rs:
