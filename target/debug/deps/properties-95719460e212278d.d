/root/repo/target/debug/deps/properties-95719460e212278d.d: crates/geo/tests/properties.rs

/root/repo/target/debug/deps/libproperties-95719460e212278d.rmeta: crates/geo/tests/properties.rs

crates/geo/tests/properties.rs:
