/root/repo/target/debug/deps/properties-0d59959f8abfc27b.d: crates/mobility/tests/properties.rs

/root/repo/target/debug/deps/properties-0d59959f8abfc27b: crates/mobility/tests/properties.rs

crates/mobility/tests/properties.rs:
