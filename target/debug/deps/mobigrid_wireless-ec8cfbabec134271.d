/root/repo/target/debug/deps/mobigrid_wireless-ec8cfbabec134271.d: crates/wireless/src/lib.rs crates/wireless/src/energy.rs crates/wireless/src/error.rs crates/wireless/src/gateway.rs crates/wireless/src/message.rs crates/wireless/src/network.rs crates/wireless/src/outage.rs crates/wireless/src/traffic.rs

/root/repo/target/debug/deps/libmobigrid_wireless-ec8cfbabec134271.rmeta: crates/wireless/src/lib.rs crates/wireless/src/energy.rs crates/wireless/src/error.rs crates/wireless/src/gateway.rs crates/wireless/src/message.rs crates/wireless/src/network.rs crates/wireless/src/outage.rs crates/wireless/src/traffic.rs

crates/wireless/src/lib.rs:
crates/wireless/src/energy.rs:
crates/wireless/src/error.rs:
crates/wireless/src/gateway.rs:
crates/wireless/src/message.rs:
crates/wireless/src/network.rs:
crates/wireless/src/outage.rs:
crates/wireless/src/traffic.rs:
