/root/repo/target/debug/deps/intervals-50b1a793d54dacfb.d: crates/experiments/src/bin/intervals.rs crates/experiments/src/bin/common/mod.rs

/root/repo/target/debug/deps/intervals-50b1a793d54dacfb: crates/experiments/src/bin/intervals.rs crates/experiments/src/bin/common/mod.rs

crates/experiments/src/bin/intervals.rs:
crates/experiments/src/bin/common/mod.rs:
