/root/repo/target/debug/deps/scalability-8f60e2d2537a11d5.d: crates/experiments/src/bin/scalability.rs crates/experiments/src/bin/common/mod.rs

/root/repo/target/debug/deps/libscalability-8f60e2d2537a11d5.rmeta: crates/experiments/src/bin/scalability.rs crates/experiments/src/bin/common/mod.rs

crates/experiments/src/bin/scalability.rs:
crates/experiments/src/bin/common/mod.rs:
