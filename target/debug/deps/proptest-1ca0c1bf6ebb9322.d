/root/repo/target/debug/deps/proptest-1ca0c1bf6ebb9322.d: /tmp/stubs/proptest/src/lib.rs

/root/repo/target/debug/deps/libproptest-1ca0c1bf6ebb9322.rlib: /tmp/stubs/proptest/src/lib.rs

/root/repo/target/debug/deps/libproptest-1ca0c1bf6ebb9322.rmeta: /tmp/stubs/proptest/src/lib.rs

/tmp/stubs/proptest/src/lib.rs:
