/root/repo/target/debug/deps/workspace_api-ece914d6bb24b25b.d: tests/workspace_api.rs

/root/repo/target/debug/deps/libworkspace_api-ece914d6bb24b25b.rmeta: tests/workspace_api.rs

tests/workspace_api.rs:
