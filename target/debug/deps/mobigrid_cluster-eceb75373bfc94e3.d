/root/repo/target/debug/deps/mobigrid_cluster-eceb75373bfc94e3.d: crates/cluster/src/lib.rs crates/cluster/src/bsas.rs crates/cluster/src/clustering.rs crates/cluster/src/distance.rs crates/cluster/src/kmeans.rs

/root/repo/target/debug/deps/mobigrid_cluster-eceb75373bfc94e3: crates/cluster/src/lib.rs crates/cluster/src/bsas.rs crates/cluster/src/clustering.rs crates/cluster/src/distance.rs crates/cluster/src/kmeans.rs

crates/cluster/src/lib.rs:
crates/cluster/src/bsas.rs:
crates/cluster/src/clustering.rs:
crates/cluster/src/distance.rs:
crates/cluster/src/kmeans.rs:
