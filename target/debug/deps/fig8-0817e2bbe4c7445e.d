/root/repo/target/debug/deps/fig8-0817e2bbe4c7445e.d: crates/experiments/src/bin/fig8.rs crates/experiments/src/bin/common/mod.rs

/root/repo/target/debug/deps/fig8-0817e2bbe4c7445e: crates/experiments/src/bin/fig8.rs crates/experiments/src/bin/common/mod.rs

crates/experiments/src/bin/fig8.rs:
crates/experiments/src/bin/common/mod.rs:
