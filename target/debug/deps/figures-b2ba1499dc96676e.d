/root/repo/target/debug/deps/figures-b2ba1499dc96676e.d: crates/bench/benches/figures.rs

/root/repo/target/debug/deps/libfigures-b2ba1499dc96676e.rmeta: crates/bench/benches/figures.rs

crates/bench/benches/figures.rs:
