/root/repo/target/debug/deps/fig5-1a708bfbd08f3cc4.d: crates/experiments/src/bin/fig5.rs crates/experiments/src/bin/common/mod.rs

/root/repo/target/debug/deps/fig5-1a708bfbd08f3cc4: crates/experiments/src/bin/fig5.rs crates/experiments/src/bin/common/mod.rs

crates/experiments/src/bin/fig5.rs:
crates/experiments/src/bin/common/mod.rs:
