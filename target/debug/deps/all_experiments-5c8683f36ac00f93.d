/root/repo/target/debug/deps/all_experiments-5c8683f36ac00f93.d: crates/experiments/src/bin/all_experiments.rs crates/experiments/src/bin/common/mod.rs

/root/repo/target/debug/deps/liball_experiments-5c8683f36ac00f93.rmeta: crates/experiments/src/bin/all_experiments.rs crates/experiments/src/bin/common/mod.rs

crates/experiments/src/bin/all_experiments.rs:
crates/experiments/src/bin/common/mod.rs:
