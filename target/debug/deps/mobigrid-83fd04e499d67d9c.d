/root/repo/target/debug/deps/mobigrid-83fd04e499d67d9c.d: src/lib.rs

/root/repo/target/debug/deps/libmobigrid-83fd04e499d67d9c.rlib: src/lib.rs

/root/repo/target/debug/deps/libmobigrid-83fd04e499d67d9c.rmeta: src/lib.rs

src/lib.rs:
