/root/repo/target/debug/deps/seeds-0f80667fcc4add1c.d: crates/experiments/src/bin/seeds.rs crates/experiments/src/bin/common/mod.rs

/root/repo/target/debug/deps/libseeds-0f80667fcc4add1c.rmeta: crates/experiments/src/bin/seeds.rs crates/experiments/src/bin/common/mod.rs

crates/experiments/src/bin/seeds.rs:
crates/experiments/src/bin/common/mod.rs:
