/root/repo/target/debug/deps/proptest-2e629314fe7fffd4.d: /tmp/stubs/proptest/src/lib.rs

/root/repo/target/debug/deps/libproptest-2e629314fe7fffd4.rmeta: /tmp/stubs/proptest/src/lib.rs

/tmp/stubs/proptest/src/lib.rs:
