/root/repo/target/debug/deps/fig9-bff3a38cdeab0bf1.d: crates/experiments/src/bin/fig9.rs crates/experiments/src/bin/common/mod.rs

/root/repo/target/debug/deps/libfig9-bff3a38cdeab0bf1.rmeta: crates/experiments/src/bin/fig9.rs crates/experiments/src/bin/common/mod.rs

crates/experiments/src/bin/fig9.rs:
crates/experiments/src/bin/common/mod.rs:
