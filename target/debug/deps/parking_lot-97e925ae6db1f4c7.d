/root/repo/target/debug/deps/parking_lot-97e925ae6db1f4c7.d: /tmp/stubs/parking_lot/src/lib.rs

/root/repo/target/debug/deps/libparking_lot-97e925ae6db1f4c7.rmeta: /tmp/stubs/parking_lot/src/lib.rs

/tmp/stubs/parking_lot/src/lib.rs:
