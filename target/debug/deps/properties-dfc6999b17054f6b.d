/root/repo/target/debug/deps/properties-dfc6999b17054f6b.d: crates/mobility/tests/properties.rs

/root/repo/target/debug/deps/libproperties-dfc6999b17054f6b.rmeta: crates/mobility/tests/properties.rs

crates/mobility/tests/properties.rs:
