/root/repo/target/debug/deps/fig7-07f4f043dce91375.d: crates/experiments/src/bin/fig7.rs crates/experiments/src/bin/common/mod.rs

/root/repo/target/debug/deps/fig7-07f4f043dce91375: crates/experiments/src/bin/fig7.rs crates/experiments/src/bin/common/mod.rs

crates/experiments/src/bin/fig7.rs:
crates/experiments/src/bin/common/mod.rs:
