/root/repo/target/debug/deps/fig8-2dc733b2d21b92c8.d: crates/experiments/src/bin/fig8.rs crates/experiments/src/bin/common/mod.rs

/root/repo/target/debug/deps/fig8-2dc733b2d21b92c8: crates/experiments/src/bin/fig8.rs crates/experiments/src/bin/common/mod.rs

crates/experiments/src/bin/fig8.rs:
crates/experiments/src/bin/common/mod.rs:
