/root/repo/target/debug/deps/properties-6cd5d2447de15e52.d: crates/wireless/tests/properties.rs

/root/repo/target/debug/deps/libproperties-6cd5d2447de15e52.rmeta: crates/wireless/tests/properties.rs

crates/wireless/tests/properties.rs:
