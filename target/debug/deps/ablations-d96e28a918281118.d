/root/repo/target/debug/deps/ablations-d96e28a918281118.d: crates/bench/benches/ablations.rs

/root/repo/target/debug/deps/libablations-d96e28a918281118.rmeta: crates/bench/benches/ablations.rs

crates/bench/benches/ablations.rs:
