/root/repo/target/debug/deps/crossbeam-96b2f1929cea831e.d: /tmp/stubs/crossbeam/src/lib.rs

/root/repo/target/debug/deps/libcrossbeam-96b2f1929cea831e.rlib: /tmp/stubs/crossbeam/src/lib.rs

/root/repo/target/debug/deps/libcrossbeam-96b2f1929cea831e.rmeta: /tmp/stubs/crossbeam/src/lib.rs

/tmp/stubs/crossbeam/src/lib.rs:
