/root/repo/target/debug/deps/end_to_end-fbf27896e908e83c.d: tests/end_to_end.rs

/root/repo/target/debug/deps/end_to_end-fbf27896e908e83c: tests/end_to_end.rs

tests/end_to_end.rs:
