/root/repo/target/debug/deps/rand-c27fd6a4c117fc5b.d: /tmp/stubs/rand/src/lib.rs

/root/repo/target/debug/deps/librand-c27fd6a4c117fc5b.rlib: /tmp/stubs/rand/src/lib.rs

/root/repo/target/debug/deps/librand-c27fd6a4c117fc5b.rmeta: /tmp/stubs/rand/src/lib.rs

/tmp/stubs/rand/src/lib.rs:
