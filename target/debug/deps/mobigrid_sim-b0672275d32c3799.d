/root/repo/target/debug/deps/mobigrid_sim-b0672275d32c3799.d: crates/sim/src/lib.rs crates/sim/src/engine.rs crates/sim/src/queue.rs crates/sim/src/rng.rs crates/sim/src/stats.rs crates/sim/src/stepper.rs crates/sim/src/time.rs

/root/repo/target/debug/deps/mobigrid_sim-b0672275d32c3799: crates/sim/src/lib.rs crates/sim/src/engine.rs crates/sim/src/queue.rs crates/sim/src/rng.rs crates/sim/src/stats.rs crates/sim/src/stepper.rs crates/sim/src/time.rs

crates/sim/src/lib.rs:
crates/sim/src/engine.rs:
crates/sim/src/queue.rs:
crates/sim/src/rng.rs:
crates/sim/src/stats.rs:
crates/sim/src/stepper.rs:
crates/sim/src/time.rs:
