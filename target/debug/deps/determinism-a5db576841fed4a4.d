/root/repo/target/debug/deps/determinism-a5db576841fed4a4.d: crates/experiments/tests/determinism.rs Cargo.toml

/root/repo/target/debug/deps/libdeterminism-a5db576841fed4a4.rmeta: crates/experiments/tests/determinism.rs Cargo.toml

crates/experiments/tests/determinism.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
