/root/repo/target/debug/deps/determinism-829a405782e1bf06.d: crates/experiments/tests/determinism.rs

/root/repo/target/debug/deps/determinism-829a405782e1bf06: crates/experiments/tests/determinism.rs

crates/experiments/tests/determinism.rs:
