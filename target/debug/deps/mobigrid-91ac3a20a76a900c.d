/root/repo/target/debug/deps/mobigrid-91ac3a20a76a900c.d: src/lib.rs

/root/repo/target/debug/deps/libmobigrid-91ac3a20a76a900c.rlib: src/lib.rs

/root/repo/target/debug/deps/libmobigrid-91ac3a20a76a900c.rmeta: src/lib.rs

src/lib.rs:
