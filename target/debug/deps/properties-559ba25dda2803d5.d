/root/repo/target/debug/deps/properties-559ba25dda2803d5.d: crates/adf/tests/properties.rs

/root/repo/target/debug/deps/properties-559ba25dda2803d5: crates/adf/tests/properties.rs

crates/adf/tests/properties.rs:
