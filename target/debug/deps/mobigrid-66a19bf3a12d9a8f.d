/root/repo/target/debug/deps/mobigrid-66a19bf3a12d9a8f.d: src/lib.rs

/root/repo/target/debug/deps/libmobigrid-66a19bf3a12d9a8f.rmeta: src/lib.rs

src/lib.rs:
