/root/repo/target/debug/deps/mobigrid_geo-86d24d26a17baeb5.d: crates/geo/src/lib.rs crates/geo/src/error.rs crates/geo/src/heading.rs crates/geo/src/point.rs crates/geo/src/polygon.rs crates/geo/src/polyline.rs crates/geo/src/rect.rs crates/geo/src/segment.rs crates/geo/src/vec2.rs

/root/repo/target/debug/deps/libmobigrid_geo-86d24d26a17baeb5.rlib: crates/geo/src/lib.rs crates/geo/src/error.rs crates/geo/src/heading.rs crates/geo/src/point.rs crates/geo/src/polygon.rs crates/geo/src/polyline.rs crates/geo/src/rect.rs crates/geo/src/segment.rs crates/geo/src/vec2.rs

/root/repo/target/debug/deps/libmobigrid_geo-86d24d26a17baeb5.rmeta: crates/geo/src/lib.rs crates/geo/src/error.rs crates/geo/src/heading.rs crates/geo/src/point.rs crates/geo/src/polygon.rs crates/geo/src/polyline.rs crates/geo/src/rect.rs crates/geo/src/segment.rs crates/geo/src/vec2.rs

crates/geo/src/lib.rs:
crates/geo/src/error.rs:
crates/geo/src/heading.rs:
crates/geo/src/point.rs:
crates/geo/src/polygon.rs:
crates/geo/src/polyline.rs:
crates/geo/src/rect.rs:
crates/geo/src/segment.rs:
crates/geo/src/vec2.rs:
