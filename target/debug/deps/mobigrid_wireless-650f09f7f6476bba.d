/root/repo/target/debug/deps/mobigrid_wireless-650f09f7f6476bba.d: crates/wireless/src/lib.rs crates/wireless/src/energy.rs crates/wireless/src/error.rs crates/wireless/src/gateway.rs crates/wireless/src/message.rs crates/wireless/src/network.rs crates/wireless/src/outage.rs crates/wireless/src/traffic.rs

/root/repo/target/debug/deps/libmobigrid_wireless-650f09f7f6476bba.rmeta: crates/wireless/src/lib.rs crates/wireless/src/energy.rs crates/wireless/src/error.rs crates/wireless/src/gateway.rs crates/wireless/src/message.rs crates/wireless/src/network.rs crates/wireless/src/outage.rs crates/wireless/src/traffic.rs

crates/wireless/src/lib.rs:
crates/wireless/src/energy.rs:
crates/wireless/src/error.rs:
crates/wireless/src/gateway.rs:
crates/wireless/src/message.rs:
crates/wireless/src/network.rs:
crates/wireless/src/outage.rs:
crates/wireless/src/traffic.rs:
