/root/repo/target/debug/deps/mobigrid_wireless-77326e722284293a.d: crates/wireless/src/lib.rs crates/wireless/src/energy.rs crates/wireless/src/error.rs crates/wireless/src/gateway.rs crates/wireless/src/message.rs crates/wireless/src/network.rs crates/wireless/src/outage.rs crates/wireless/src/traffic.rs

/root/repo/target/debug/deps/mobigrid_wireless-77326e722284293a: crates/wireless/src/lib.rs crates/wireless/src/energy.rs crates/wireless/src/error.rs crates/wireless/src/gateway.rs crates/wireless/src/message.rs crates/wireless/src/network.rs crates/wireless/src/outage.rs crates/wireless/src/traffic.rs

crates/wireless/src/lib.rs:
crates/wireless/src/energy.rs:
crates/wireless/src/error.rs:
crates/wireless/src/gateway.rs:
crates/wireless/src/message.rs:
crates/wireless/src/network.rs:
crates/wireless/src/outage.rs:
crates/wireless/src/traffic.rs:
