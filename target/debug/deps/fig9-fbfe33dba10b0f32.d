/root/repo/target/debug/deps/fig9-fbfe33dba10b0f32.d: crates/experiments/src/bin/fig9.rs crates/experiments/src/bin/common/mod.rs

/root/repo/target/debug/deps/libfig9-fbfe33dba10b0f32.rmeta: crates/experiments/src/bin/fig9.rs crates/experiments/src/bin/common/mod.rs

crates/experiments/src/bin/fig9.rs:
crates/experiments/src/bin/common/mod.rs:
