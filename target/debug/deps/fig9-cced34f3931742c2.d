/root/repo/target/debug/deps/fig9-cced34f3931742c2.d: crates/experiments/src/bin/fig9.rs crates/experiments/src/bin/common/mod.rs

/root/repo/target/debug/deps/libfig9-cced34f3931742c2.rmeta: crates/experiments/src/bin/fig9.rs crates/experiments/src/bin/common/mod.rs

crates/experiments/src/bin/fig9.rs:
crates/experiments/src/bin/common/mod.rs:
