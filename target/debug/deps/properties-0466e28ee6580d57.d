/root/repo/target/debug/deps/properties-0466e28ee6580d57.d: crates/cluster/tests/properties.rs

/root/repo/target/debug/deps/properties-0466e28ee6580d57: crates/cluster/tests/properties.rs

crates/cluster/tests/properties.rs:
