/root/repo/target/debug/deps/fig4-77088c68bf05a045.d: crates/experiments/src/bin/fig4.rs crates/experiments/src/bin/common/mod.rs

/root/repo/target/debug/deps/fig4-77088c68bf05a045: crates/experiments/src/bin/fig4.rs crates/experiments/src/bin/common/mod.rs

crates/experiments/src/bin/fig4.rs:
crates/experiments/src/bin/common/mod.rs:
