/root/repo/target/debug/deps/mobigrid_sim-82ebb6abe05620ed.d: crates/sim/src/lib.rs crates/sim/src/engine.rs crates/sim/src/queue.rs crates/sim/src/rng.rs crates/sim/src/stats.rs crates/sim/src/stepper.rs crates/sim/src/time.rs

/root/repo/target/debug/deps/libmobigrid_sim-82ebb6abe05620ed.rlib: crates/sim/src/lib.rs crates/sim/src/engine.rs crates/sim/src/queue.rs crates/sim/src/rng.rs crates/sim/src/stats.rs crates/sim/src/stepper.rs crates/sim/src/time.rs

/root/repo/target/debug/deps/libmobigrid_sim-82ebb6abe05620ed.rmeta: crates/sim/src/lib.rs crates/sim/src/engine.rs crates/sim/src/queue.rs crates/sim/src/rng.rs crates/sim/src/stats.rs crates/sim/src/stepper.rs crates/sim/src/time.rs

crates/sim/src/lib.rs:
crates/sim/src/engine.rs:
crates/sim/src/queue.rs:
crates/sim/src/rng.rs:
crates/sim/src/stats.rs:
crates/sim/src/stepper.rs:
crates/sim/src/time.rs:
