/root/repo/target/debug/deps/crossbeam-25b738372e06c292.d: /tmp/stubs/crossbeam/src/lib.rs

/root/repo/target/debug/deps/libcrossbeam-25b738372e06c292.rmeta: /tmp/stubs/crossbeam/src/lib.rs

/tmp/stubs/crossbeam/src/lib.rs:
