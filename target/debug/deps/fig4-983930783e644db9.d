/root/repo/target/debug/deps/fig4-983930783e644db9.d: crates/experiments/src/bin/fig4.rs crates/experiments/src/bin/common/mod.rs

/root/repo/target/debug/deps/libfig4-983930783e644db9.rmeta: crates/experiments/src/bin/fig4.rs crates/experiments/src/bin/common/mod.rs

crates/experiments/src/bin/fig4.rs:
crates/experiments/src/bin/common/mod.rs:
