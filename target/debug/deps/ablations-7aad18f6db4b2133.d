/root/repo/target/debug/deps/ablations-7aad18f6db4b2133.d: crates/bench/benches/ablations.rs Cargo.toml

/root/repo/target/debug/deps/libablations-7aad18f6db4b2133.rmeta: crates/bench/benches/ablations.rs Cargo.toml

crates/bench/benches/ablations.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
