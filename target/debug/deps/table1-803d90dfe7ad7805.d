/root/repo/target/debug/deps/table1-803d90dfe7ad7805.d: crates/experiments/src/bin/table1.rs

/root/repo/target/debug/deps/table1-803d90dfe7ad7805: crates/experiments/src/bin/table1.rs

crates/experiments/src/bin/table1.rs:
