/root/repo/target/debug/deps/properties-fcb4313d6a271d29.d: crates/wireless/tests/properties.rs Cargo.toml

/root/repo/target/debug/deps/libproperties-fcb4313d6a271d29.rmeta: crates/wireless/tests/properties.rs Cargo.toml

crates/wireless/tests/properties.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
