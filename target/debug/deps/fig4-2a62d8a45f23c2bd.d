/root/repo/target/debug/deps/fig4-2a62d8a45f23c2bd.d: crates/experiments/src/bin/fig4.rs crates/experiments/src/bin/common/mod.rs

/root/repo/target/debug/deps/libfig4-2a62d8a45f23c2bd.rmeta: crates/experiments/src/bin/fig4.rs crates/experiments/src/bin/common/mod.rs

crates/experiments/src/bin/fig4.rs:
crates/experiments/src/bin/common/mod.rs:
