/root/repo/target/debug/deps/threaded-9b9db6f3598526d1.d: crates/hla/tests/threaded.rs Cargo.toml

/root/repo/target/debug/deps/libthreaded-9b9db6f3598526d1.rmeta: crates/hla/tests/threaded.rs Cargo.toml

crates/hla/tests/threaded.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
