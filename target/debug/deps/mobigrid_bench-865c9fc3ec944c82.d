/root/repo/target/debug/deps/mobigrid_bench-865c9fc3ec944c82.d: crates/bench/src/lib.rs

/root/repo/target/debug/deps/libmobigrid_bench-865c9fc3ec944c82.rlib: crates/bench/src/lib.rs

/root/repo/target/debug/deps/libmobigrid_bench-865c9fc3ec944c82.rmeta: crates/bench/src/lib.rs

crates/bench/src/lib.rs:
