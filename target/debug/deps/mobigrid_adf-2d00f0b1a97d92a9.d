/root/repo/target/debug/deps/mobigrid_adf-2d00f0b1a97d92a9.d: crates/adf/src/lib.rs crates/adf/src/broker.rs crates/adf/src/classifier.rs crates/adf/src/config.rs crates/adf/src/filter.rs crates/adf/src/node.rs crates/adf/src/pipeline.rs crates/adf/src/policy.rs crates/adf/src/stats.rs

/root/repo/target/debug/deps/mobigrid_adf-2d00f0b1a97d92a9: crates/adf/src/lib.rs crates/adf/src/broker.rs crates/adf/src/classifier.rs crates/adf/src/config.rs crates/adf/src/filter.rs crates/adf/src/node.rs crates/adf/src/pipeline.rs crates/adf/src/policy.rs crates/adf/src/stats.rs

crates/adf/src/lib.rs:
crates/adf/src/broker.rs:
crates/adf/src/classifier.rs:
crates/adf/src/config.rs:
crates/adf/src/filter.rs:
crates/adf/src/node.rs:
crates/adf/src/pipeline.rs:
crates/adf/src/policy.rs:
crates/adf/src/stats.rs:
