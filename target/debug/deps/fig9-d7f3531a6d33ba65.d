/root/repo/target/debug/deps/fig9-d7f3531a6d33ba65.d: crates/experiments/src/bin/fig9.rs crates/experiments/src/bin/common/mod.rs Cargo.toml

/root/repo/target/debug/deps/libfig9-d7f3531a6d33ba65.rmeta: crates/experiments/src/bin/fig9.rs crates/experiments/src/bin/common/mod.rs Cargo.toml

crates/experiments/src/bin/fig9.rs:
crates/experiments/src/bin/common/mod.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
