/root/repo/target/debug/deps/scalability-6e523aa14094d18f.d: crates/experiments/src/bin/scalability.rs crates/experiments/src/bin/common/mod.rs

/root/repo/target/debug/deps/libscalability-6e523aa14094d18f.rmeta: crates/experiments/src/bin/scalability.rs crates/experiments/src/bin/common/mod.rs

crates/experiments/src/bin/scalability.rs:
crates/experiments/src/bin/common/mod.rs:
