/root/repo/target/debug/deps/intervals-6af962dce4a2d560.d: crates/experiments/src/bin/intervals.rs crates/experiments/src/bin/common/mod.rs

/root/repo/target/debug/deps/intervals-6af962dce4a2d560: crates/experiments/src/bin/intervals.rs crates/experiments/src/bin/common/mod.rs

crates/experiments/src/bin/intervals.rs:
crates/experiments/src/bin/common/mod.rs:
