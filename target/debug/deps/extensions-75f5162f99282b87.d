/root/repo/target/debug/deps/extensions-75f5162f99282b87.d: crates/experiments/src/bin/extensions.rs crates/experiments/src/bin/common/mod.rs

/root/repo/target/debug/deps/extensions-75f5162f99282b87: crates/experiments/src/bin/extensions.rs crates/experiments/src/bin/common/mod.rs

crates/experiments/src/bin/extensions.rs:
crates/experiments/src/bin/common/mod.rs:
