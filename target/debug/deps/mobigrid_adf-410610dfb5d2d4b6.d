/root/repo/target/debug/deps/mobigrid_adf-410610dfb5d2d4b6.d: crates/adf/src/lib.rs crates/adf/src/broker.rs crates/adf/src/classifier.rs crates/adf/src/config.rs crates/adf/src/filter.rs crates/adf/src/node.rs crates/adf/src/pipeline.rs crates/adf/src/policy.rs crates/adf/src/stats.rs Cargo.toml

/root/repo/target/debug/deps/libmobigrid_adf-410610dfb5d2d4b6.rmeta: crates/adf/src/lib.rs crates/adf/src/broker.rs crates/adf/src/classifier.rs crates/adf/src/config.rs crates/adf/src/filter.rs crates/adf/src/node.rs crates/adf/src/pipeline.rs crates/adf/src/policy.rs crates/adf/src/stats.rs Cargo.toml

crates/adf/src/lib.rs:
crates/adf/src/broker.rs:
crates/adf/src/classifier.rs:
crates/adf/src/config.rs:
crates/adf/src/filter.rs:
crates/adf/src/node.rs:
crates/adf/src/pipeline.rs:
crates/adf/src/policy.rs:
crates/adf/src/stats.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
