/root/repo/target/debug/deps/hla_pipeline-ac3a0f3afc06dc86.d: tests/hla_pipeline.rs

/root/repo/target/debug/deps/libhla_pipeline-ac3a0f3afc06dc86.rmeta: tests/hla_pipeline.rs

tests/hla_pipeline.rs:
