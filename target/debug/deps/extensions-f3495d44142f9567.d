/root/repo/target/debug/deps/extensions-f3495d44142f9567.d: crates/experiments/src/bin/extensions.rs crates/experiments/src/bin/common/mod.rs

/root/repo/target/debug/deps/libextensions-f3495d44142f9567.rmeta: crates/experiments/src/bin/extensions.rs crates/experiments/src/bin/common/mod.rs

crates/experiments/src/bin/extensions.rs:
crates/experiments/src/bin/common/mod.rs:
