/root/repo/target/debug/deps/threaded-1889880e917900c7.d: crates/hla/tests/threaded.rs

/root/repo/target/debug/deps/libthreaded-1889880e917900c7.rmeta: crates/hla/tests/threaded.rs

crates/hla/tests/threaded.rs:
