/root/repo/target/debug/deps/criterion-59e271b68fe0ac37.d: /tmp/stubs/criterion/src/lib.rs

/root/repo/target/debug/deps/libcriterion-59e271b68fe0ac37.rlib: /tmp/stubs/criterion/src/lib.rs

/root/repo/target/debug/deps/libcriterion-59e271b68fe0ac37.rmeta: /tmp/stubs/criterion/src/lib.rs

/tmp/stubs/criterion/src/lib.rs:
