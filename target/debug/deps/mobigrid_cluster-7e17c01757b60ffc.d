/root/repo/target/debug/deps/mobigrid_cluster-7e17c01757b60ffc.d: crates/cluster/src/lib.rs crates/cluster/src/bsas.rs crates/cluster/src/clustering.rs crates/cluster/src/distance.rs crates/cluster/src/kmeans.rs Cargo.toml

/root/repo/target/debug/deps/libmobigrid_cluster-7e17c01757b60ffc.rmeta: crates/cluster/src/lib.rs crates/cluster/src/bsas.rs crates/cluster/src/clustering.rs crates/cluster/src/distance.rs crates/cluster/src/kmeans.rs Cargo.toml

crates/cluster/src/lib.rs:
crates/cluster/src/bsas.rs:
crates/cluster/src/clustering.rs:
crates/cluster/src/distance.rs:
crates/cluster/src/kmeans.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
