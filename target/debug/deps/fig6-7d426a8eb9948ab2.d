/root/repo/target/debug/deps/fig6-7d426a8eb9948ab2.d: crates/experiments/src/bin/fig6.rs crates/experiments/src/bin/common/mod.rs

/root/repo/target/debug/deps/libfig6-7d426a8eb9948ab2.rmeta: crates/experiments/src/bin/fig6.rs crates/experiments/src/bin/common/mod.rs

crates/experiments/src/bin/fig6.rs:
crates/experiments/src/bin/common/mod.rs:
