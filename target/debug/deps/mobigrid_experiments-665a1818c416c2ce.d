/root/repo/target/debug/deps/mobigrid_experiments-665a1818c416c2ce.d: crates/experiments/src/lib.rs crates/experiments/src/campaign.rs crates/experiments/src/config.rs crates/experiments/src/extensions.rs crates/experiments/src/federated.rs crates/experiments/src/intervals.rs crates/experiments/src/fig4.rs crates/experiments/src/fig5.rs crates/experiments/src/fig6.rs crates/experiments/src/fig7.rs crates/experiments/src/fig89.rs crates/experiments/src/report.rs crates/experiments/src/robustness.rs crates/experiments/src/scalability.rs crates/experiments/src/table1.rs crates/experiments/src/workload.rs

/root/repo/target/debug/deps/libmobigrid_experiments-665a1818c416c2ce.rmeta: crates/experiments/src/lib.rs crates/experiments/src/campaign.rs crates/experiments/src/config.rs crates/experiments/src/extensions.rs crates/experiments/src/federated.rs crates/experiments/src/intervals.rs crates/experiments/src/fig4.rs crates/experiments/src/fig5.rs crates/experiments/src/fig6.rs crates/experiments/src/fig7.rs crates/experiments/src/fig89.rs crates/experiments/src/report.rs crates/experiments/src/robustness.rs crates/experiments/src/scalability.rs crates/experiments/src/table1.rs crates/experiments/src/workload.rs

crates/experiments/src/lib.rs:
crates/experiments/src/campaign.rs:
crates/experiments/src/config.rs:
crates/experiments/src/extensions.rs:
crates/experiments/src/federated.rs:
crates/experiments/src/intervals.rs:
crates/experiments/src/fig4.rs:
crates/experiments/src/fig5.rs:
crates/experiments/src/fig6.rs:
crates/experiments/src/fig7.rs:
crates/experiments/src/fig89.rs:
crates/experiments/src/report.rs:
crates/experiments/src/robustness.rs:
crates/experiments/src/scalability.rs:
crates/experiments/src/table1.rs:
crates/experiments/src/workload.rs:
