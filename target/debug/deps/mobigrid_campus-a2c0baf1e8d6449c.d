/root/repo/target/debug/deps/mobigrid_campus-a2c0baf1e8d6449c.d: crates/campus/src/lib.rs crates/campus/src/campus.rs crates/campus/src/error.rs crates/campus/src/graph.rs crates/campus/src/grid_city.rs crates/campus/src/inha.rs crates/campus/src/region.rs

/root/repo/target/debug/deps/libmobigrid_campus-a2c0baf1e8d6449c.rmeta: crates/campus/src/lib.rs crates/campus/src/campus.rs crates/campus/src/error.rs crates/campus/src/graph.rs crates/campus/src/grid_city.rs crates/campus/src/inha.rs crates/campus/src/region.rs

crates/campus/src/lib.rs:
crates/campus/src/campus.rs:
crates/campus/src/error.rs:
crates/campus/src/graph.rs:
crates/campus/src/grid_city.rs:
crates/campus/src/inha.rs:
crates/campus/src/region.rs:
