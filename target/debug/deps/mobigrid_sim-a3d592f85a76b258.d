/root/repo/target/debug/deps/mobigrid_sim-a3d592f85a76b258.d: crates/sim/src/lib.rs crates/sim/src/engine.rs crates/sim/src/par.rs crates/sim/src/queue.rs crates/sim/src/rng.rs crates/sim/src/stats.rs crates/sim/src/stepper.rs crates/sim/src/time.rs

/root/repo/target/debug/deps/libmobigrid_sim-a3d592f85a76b258.rmeta: crates/sim/src/lib.rs crates/sim/src/engine.rs crates/sim/src/par.rs crates/sim/src/queue.rs crates/sim/src/rng.rs crates/sim/src/stats.rs crates/sim/src/stepper.rs crates/sim/src/time.rs

crates/sim/src/lib.rs:
crates/sim/src/engine.rs:
crates/sim/src/par.rs:
crates/sim/src/queue.rs:
crates/sim/src/rng.rs:
crates/sim/src/stats.rs:
crates/sim/src/stepper.rs:
crates/sim/src/time.rs:
