/root/repo/target/debug/deps/fig9-10886d8a6ea3ba06.d: crates/experiments/src/bin/fig9.rs crates/experiments/src/bin/common/mod.rs

/root/repo/target/debug/deps/fig9-10886d8a6ea3ba06: crates/experiments/src/bin/fig9.rs crates/experiments/src/bin/common/mod.rs

crates/experiments/src/bin/fig9.rs:
crates/experiments/src/bin/common/mod.rs:
