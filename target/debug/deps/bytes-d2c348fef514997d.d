/root/repo/target/debug/deps/bytes-d2c348fef514997d.d: /tmp/stubs/bytes/src/lib.rs

/root/repo/target/debug/deps/libbytes-d2c348fef514997d.rmeta: /tmp/stubs/bytes/src/lib.rs

/tmp/stubs/bytes/src/lib.rs:
