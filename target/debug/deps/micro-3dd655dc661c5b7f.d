/root/repo/target/debug/deps/micro-3dd655dc661c5b7f.d: crates/bench/benches/micro.rs

/root/repo/target/debug/deps/libmicro-3dd655dc661c5b7f.rmeta: crates/bench/benches/micro.rs

crates/bench/benches/micro.rs:
