/root/repo/target/debug/deps/extensions-ee8b471db5b2abfb.d: crates/experiments/src/bin/extensions.rs crates/experiments/src/bin/common/mod.rs

/root/repo/target/debug/deps/extensions-ee8b471db5b2abfb: crates/experiments/src/bin/extensions.rs crates/experiments/src/bin/common/mod.rs

crates/experiments/src/bin/extensions.rs:
crates/experiments/src/bin/common/mod.rs:
