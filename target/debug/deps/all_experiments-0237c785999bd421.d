/root/repo/target/debug/deps/all_experiments-0237c785999bd421.d: crates/experiments/src/bin/all_experiments.rs crates/experiments/src/bin/common/mod.rs Cargo.toml

/root/repo/target/debug/deps/liball_experiments-0237c785999bd421.rmeta: crates/experiments/src/bin/all_experiments.rs crates/experiments/src/bin/common/mod.rs Cargo.toml

crates/experiments/src/bin/all_experiments.rs:
crates/experiments/src/bin/common/mod.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
