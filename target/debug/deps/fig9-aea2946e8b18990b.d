/root/repo/target/debug/deps/fig9-aea2946e8b18990b.d: crates/experiments/src/bin/fig9.rs crates/experiments/src/bin/common/mod.rs

/root/repo/target/debug/deps/fig9-aea2946e8b18990b: crates/experiments/src/bin/fig9.rs crates/experiments/src/bin/common/mod.rs

crates/experiments/src/bin/fig9.rs:
crates/experiments/src/bin/common/mod.rs:
