/root/repo/target/debug/deps/fig7-22bbb0238a6a1e07.d: crates/experiments/src/bin/fig7.rs crates/experiments/src/bin/common/mod.rs

/root/repo/target/debug/deps/libfig7-22bbb0238a6a1e07.rmeta: crates/experiments/src/bin/fig7.rs crates/experiments/src/bin/common/mod.rs

crates/experiments/src/bin/fig7.rs:
crates/experiments/src/bin/common/mod.rs:
