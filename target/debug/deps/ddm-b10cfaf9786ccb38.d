/root/repo/target/debug/deps/ddm-b10cfaf9786ccb38.d: crates/hla/tests/ddm.rs

/root/repo/target/debug/deps/libddm-b10cfaf9786ccb38.rmeta: crates/hla/tests/ddm.rs

crates/hla/tests/ddm.rs:
