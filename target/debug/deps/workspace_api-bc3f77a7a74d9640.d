/root/repo/target/debug/deps/workspace_api-bc3f77a7a74d9640.d: tests/workspace_api.rs

/root/repo/target/debug/deps/workspace_api-bc3f77a7a74d9640: tests/workspace_api.rs

tests/workspace_api.rs:
