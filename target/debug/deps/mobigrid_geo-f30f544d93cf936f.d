/root/repo/target/debug/deps/mobigrid_geo-f30f544d93cf936f.d: crates/geo/src/lib.rs crates/geo/src/error.rs crates/geo/src/heading.rs crates/geo/src/point.rs crates/geo/src/polygon.rs crates/geo/src/polyline.rs crates/geo/src/rect.rs crates/geo/src/segment.rs crates/geo/src/vec2.rs

/root/repo/target/debug/deps/libmobigrid_geo-f30f544d93cf936f.rmeta: crates/geo/src/lib.rs crates/geo/src/error.rs crates/geo/src/heading.rs crates/geo/src/point.rs crates/geo/src/polygon.rs crates/geo/src/polyline.rs crates/geo/src/rect.rs crates/geo/src/segment.rs crates/geo/src/vec2.rs

crates/geo/src/lib.rs:
crates/geo/src/error.rs:
crates/geo/src/heading.rs:
crates/geo/src/point.rs:
crates/geo/src/polygon.rs:
crates/geo/src/polyline.rs:
crates/geo/src/rect.rs:
crates/geo/src/segment.rs:
crates/geo/src/vec2.rs:
