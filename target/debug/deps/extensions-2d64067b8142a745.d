/root/repo/target/debug/deps/extensions-2d64067b8142a745.d: crates/experiments/src/bin/extensions.rs crates/experiments/src/bin/common/mod.rs Cargo.toml

/root/repo/target/debug/deps/libextensions-2d64067b8142a745.rmeta: crates/experiments/src/bin/extensions.rs crates/experiments/src/bin/common/mod.rs Cargo.toml

crates/experiments/src/bin/extensions.rs:
crates/experiments/src/bin/common/mod.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
