/root/repo/target/debug/deps/properties-4e33f83d70670a76.d: crates/forecast/tests/properties.rs

/root/repo/target/debug/deps/properties-4e33f83d70670a76: crates/forecast/tests/properties.rs

crates/forecast/tests/properties.rs:
