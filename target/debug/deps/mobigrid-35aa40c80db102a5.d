/root/repo/target/debug/deps/mobigrid-35aa40c80db102a5.d: src/lib.rs

/root/repo/target/debug/deps/mobigrid-35aa40c80db102a5: src/lib.rs

src/lib.rs:
