/root/repo/target/debug/deps/end_to_end-2bc5542080ef4a0b.d: tests/end_to_end.rs

/root/repo/target/debug/deps/end_to_end-2bc5542080ef4a0b: tests/end_to_end.rs

tests/end_to_end.rs:
