/root/repo/target/debug/deps/seeds-f81a41eaebbcae31.d: crates/experiments/src/bin/seeds.rs crates/experiments/src/bin/common/mod.rs

/root/repo/target/debug/deps/libseeds-f81a41eaebbcae31.rmeta: crates/experiments/src/bin/seeds.rs crates/experiments/src/bin/common/mod.rs

crates/experiments/src/bin/seeds.rs:
crates/experiments/src/bin/common/mod.rs:
