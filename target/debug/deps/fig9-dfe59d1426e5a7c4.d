/root/repo/target/debug/deps/fig9-dfe59d1426e5a7c4.d: crates/experiments/src/bin/fig9.rs crates/experiments/src/bin/common/mod.rs

/root/repo/target/debug/deps/fig9-dfe59d1426e5a7c4: crates/experiments/src/bin/fig9.rs crates/experiments/src/bin/common/mod.rs

crates/experiments/src/bin/fig9.rs:
crates/experiments/src/bin/common/mod.rs:
