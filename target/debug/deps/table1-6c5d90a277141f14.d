/root/repo/target/debug/deps/table1-6c5d90a277141f14.d: crates/experiments/src/bin/table1.rs

/root/repo/target/debug/deps/libtable1-6c5d90a277141f14.rmeta: crates/experiments/src/bin/table1.rs

crates/experiments/src/bin/table1.rs:
