/root/repo/target/debug/deps/mobigrid_hla-5b1a2d8495ffdcf6.d: crates/hla/src/lib.rs crates/hla/src/callback.rs crates/hla/src/error.rs crates/hla/src/federation.rs crates/hla/src/fom.rs crates/hla/src/handles.rs crates/hla/src/region.rs crates/hla/src/rti.rs crates/hla/src/time.rs crates/hla/src/time_mgmt.rs

/root/repo/target/debug/deps/mobigrid_hla-5b1a2d8495ffdcf6: crates/hla/src/lib.rs crates/hla/src/callback.rs crates/hla/src/error.rs crates/hla/src/federation.rs crates/hla/src/fom.rs crates/hla/src/handles.rs crates/hla/src/region.rs crates/hla/src/rti.rs crates/hla/src/time.rs crates/hla/src/time_mgmt.rs

crates/hla/src/lib.rs:
crates/hla/src/callback.rs:
crates/hla/src/error.rs:
crates/hla/src/federation.rs:
crates/hla/src/fom.rs:
crates/hla/src/handles.rs:
crates/hla/src/region.rs:
crates/hla/src/rti.rs:
crates/hla/src/time.rs:
crates/hla/src/time_mgmt.rs:
