/root/repo/target/debug/deps/mobigrid_sim-91f4b9edbfd19336.d: crates/sim/src/lib.rs crates/sim/src/engine.rs crates/sim/src/par.rs crates/sim/src/queue.rs crates/sim/src/rng.rs crates/sim/src/stats.rs crates/sim/src/stepper.rs crates/sim/src/time.rs Cargo.toml

/root/repo/target/debug/deps/libmobigrid_sim-91f4b9edbfd19336.rmeta: crates/sim/src/lib.rs crates/sim/src/engine.rs crates/sim/src/par.rs crates/sim/src/queue.rs crates/sim/src/rng.rs crates/sim/src/stats.rs crates/sim/src/stepper.rs crates/sim/src/time.rs Cargo.toml

crates/sim/src/lib.rs:
crates/sim/src/engine.rs:
crates/sim/src/par.rs:
crates/sim/src/queue.rs:
crates/sim/src/rng.rs:
crates/sim/src/stats.rs:
crates/sim/src/stepper.rs:
crates/sim/src/time.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
