/root/repo/target/debug/deps/fig4-1bffcc6d49e8205b.d: crates/experiments/src/bin/fig4.rs crates/experiments/src/bin/common/mod.rs Cargo.toml

/root/repo/target/debug/deps/libfig4-1bffcc6d49e8205b.rmeta: crates/experiments/src/bin/fig4.rs crates/experiments/src/bin/common/mod.rs Cargo.toml

crates/experiments/src/bin/fig4.rs:
crates/experiments/src/bin/common/mod.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
