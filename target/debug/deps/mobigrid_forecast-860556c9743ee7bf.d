/root/repo/target/debug/deps/mobigrid_forecast-860556c9743ee7bf.d: crates/forecast/src/lib.rs crates/forecast/src/ar.rs crates/forecast/src/brown.rs crates/forecast/src/error.rs crates/forecast/src/holt.rs crates/forecast/src/kalman.rs crates/forecast/src/lin.rs crates/forecast/src/metrics.rs crates/forecast/src/ses.rs crates/forecast/src/tracker.rs

/root/repo/target/debug/deps/libmobigrid_forecast-860556c9743ee7bf.rlib: crates/forecast/src/lib.rs crates/forecast/src/ar.rs crates/forecast/src/brown.rs crates/forecast/src/error.rs crates/forecast/src/holt.rs crates/forecast/src/kalman.rs crates/forecast/src/lin.rs crates/forecast/src/metrics.rs crates/forecast/src/ses.rs crates/forecast/src/tracker.rs

/root/repo/target/debug/deps/libmobigrid_forecast-860556c9743ee7bf.rmeta: crates/forecast/src/lib.rs crates/forecast/src/ar.rs crates/forecast/src/brown.rs crates/forecast/src/error.rs crates/forecast/src/holt.rs crates/forecast/src/kalman.rs crates/forecast/src/lin.rs crates/forecast/src/metrics.rs crates/forecast/src/ses.rs crates/forecast/src/tracker.rs

crates/forecast/src/lib.rs:
crates/forecast/src/ar.rs:
crates/forecast/src/brown.rs:
crates/forecast/src/error.rs:
crates/forecast/src/holt.rs:
crates/forecast/src/kalman.rs:
crates/forecast/src/lin.rs:
crates/forecast/src/metrics.rs:
crates/forecast/src/ses.rs:
crates/forecast/src/tracker.rs:
