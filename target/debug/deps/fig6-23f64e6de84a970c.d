/root/repo/target/debug/deps/fig6-23f64e6de84a970c.d: crates/experiments/src/bin/fig6.rs crates/experiments/src/bin/common/mod.rs

/root/repo/target/debug/deps/fig6-23f64e6de84a970c: crates/experiments/src/bin/fig6.rs crates/experiments/src/bin/common/mod.rs

crates/experiments/src/bin/fig6.rs:
crates/experiments/src/bin/common/mod.rs:
