/root/repo/target/debug/deps/extensions-17749ae64358739d.d: crates/experiments/src/bin/extensions.rs crates/experiments/src/bin/common/mod.rs

/root/repo/target/debug/deps/extensions-17749ae64358739d: crates/experiments/src/bin/extensions.rs crates/experiments/src/bin/common/mod.rs

crates/experiments/src/bin/extensions.rs:
crates/experiments/src/bin/common/mod.rs:
