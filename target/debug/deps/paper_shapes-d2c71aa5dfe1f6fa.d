/root/repo/target/debug/deps/paper_shapes-d2c71aa5dfe1f6fa.d: tests/paper_shapes.rs

/root/repo/target/debug/deps/paper_shapes-d2c71aa5dfe1f6fa: tests/paper_shapes.rs

tests/paper_shapes.rs:
