/root/repo/target/debug/deps/fig5-eea90fbab85e5fe3.d: crates/experiments/src/bin/fig5.rs crates/experiments/src/bin/common/mod.rs Cargo.toml

/root/repo/target/debug/deps/libfig5-eea90fbab85e5fe3.rmeta: crates/experiments/src/bin/fig5.rs crates/experiments/src/bin/common/mod.rs Cargo.toml

crates/experiments/src/bin/fig5.rs:
crates/experiments/src/bin/common/mod.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
