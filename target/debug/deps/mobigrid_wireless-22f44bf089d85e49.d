/root/repo/target/debug/deps/mobigrid_wireless-22f44bf089d85e49.d: crates/wireless/src/lib.rs crates/wireless/src/energy.rs crates/wireless/src/error.rs crates/wireless/src/gateway.rs crates/wireless/src/message.rs crates/wireless/src/network.rs crates/wireless/src/outage.rs crates/wireless/src/traffic.rs Cargo.toml

/root/repo/target/debug/deps/libmobigrid_wireless-22f44bf089d85e49.rmeta: crates/wireless/src/lib.rs crates/wireless/src/energy.rs crates/wireless/src/error.rs crates/wireless/src/gateway.rs crates/wireless/src/message.rs crates/wireless/src/network.rs crates/wireless/src/outage.rs crates/wireless/src/traffic.rs Cargo.toml

crates/wireless/src/lib.rs:
crates/wireless/src/energy.rs:
crates/wireless/src/error.rs:
crates/wireless/src/gateway.rs:
crates/wireless/src/message.rs:
crates/wireless/src/network.rs:
crates/wireless/src/outage.rs:
crates/wireless/src/traffic.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
