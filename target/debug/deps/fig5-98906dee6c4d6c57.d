/root/repo/target/debug/deps/fig5-98906dee6c4d6c57.d: crates/experiments/src/bin/fig5.rs crates/experiments/src/bin/common/mod.rs

/root/repo/target/debug/deps/fig5-98906dee6c4d6c57: crates/experiments/src/bin/fig5.rs crates/experiments/src/bin/common/mod.rs

crates/experiments/src/bin/fig5.rs:
crates/experiments/src/bin/common/mod.rs:
