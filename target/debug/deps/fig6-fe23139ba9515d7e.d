/root/repo/target/debug/deps/fig6-fe23139ba9515d7e.d: crates/experiments/src/bin/fig6.rs crates/experiments/src/bin/common/mod.rs Cargo.toml

/root/repo/target/debug/deps/libfig6-fe23139ba9515d7e.rmeta: crates/experiments/src/bin/fig6.rs crates/experiments/src/bin/common/mod.rs Cargo.toml

crates/experiments/src/bin/fig6.rs:
crates/experiments/src/bin/common/mod.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
