/root/repo/target/debug/deps/fig6-8531f3e88b22870b.d: crates/experiments/src/bin/fig6.rs crates/experiments/src/bin/common/mod.rs

/root/repo/target/debug/deps/libfig6-8531f3e88b22870b.rmeta: crates/experiments/src/bin/fig6.rs crates/experiments/src/bin/common/mod.rs

crates/experiments/src/bin/fig6.rs:
crates/experiments/src/bin/common/mod.rs:
