/root/repo/target/debug/deps/extensions-a256de1df6bf90aa.d: crates/experiments/src/bin/extensions.rs crates/experiments/src/bin/common/mod.rs Cargo.toml

/root/repo/target/debug/deps/libextensions-a256de1df6bf90aa.rmeta: crates/experiments/src/bin/extensions.rs crates/experiments/src/bin/common/mod.rs Cargo.toml

crates/experiments/src/bin/extensions.rs:
crates/experiments/src/bin/common/mod.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
