/root/repo/target/debug/deps/mobigrid_bench-384e95a35a8d6c01.d: crates/bench/src/lib.rs

/root/repo/target/debug/deps/libmobigrid_bench-384e95a35a8d6c01.rlib: crates/bench/src/lib.rs

/root/repo/target/debug/deps/libmobigrid_bench-384e95a35a8d6c01.rmeta: crates/bench/src/lib.rs

crates/bench/src/lib.rs:
