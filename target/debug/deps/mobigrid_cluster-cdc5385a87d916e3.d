/root/repo/target/debug/deps/mobigrid_cluster-cdc5385a87d916e3.d: crates/cluster/src/lib.rs crates/cluster/src/bsas.rs crates/cluster/src/clustering.rs crates/cluster/src/distance.rs crates/cluster/src/kmeans.rs

/root/repo/target/debug/deps/libmobigrid_cluster-cdc5385a87d916e3.rlib: crates/cluster/src/lib.rs crates/cluster/src/bsas.rs crates/cluster/src/clustering.rs crates/cluster/src/distance.rs crates/cluster/src/kmeans.rs

/root/repo/target/debug/deps/libmobigrid_cluster-cdc5385a87d916e3.rmeta: crates/cluster/src/lib.rs crates/cluster/src/bsas.rs crates/cluster/src/clustering.rs crates/cluster/src/distance.rs crates/cluster/src/kmeans.rs

crates/cluster/src/lib.rs:
crates/cluster/src/bsas.rs:
crates/cluster/src/clustering.rs:
crates/cluster/src/distance.rs:
crates/cluster/src/kmeans.rs:
