/root/repo/target/debug/deps/properties-7695d78f09a73613.d: crates/adf/tests/properties.rs

/root/repo/target/debug/deps/properties-7695d78f09a73613: crates/adf/tests/properties.rs

crates/adf/tests/properties.rs:
