/root/repo/target/debug/deps/mobigrid_forecast-69306a919af0858a.d: crates/forecast/src/lib.rs crates/forecast/src/ar.rs crates/forecast/src/brown.rs crates/forecast/src/error.rs crates/forecast/src/holt.rs crates/forecast/src/kalman.rs crates/forecast/src/lin.rs crates/forecast/src/metrics.rs crates/forecast/src/ses.rs crates/forecast/src/tracker.rs

/root/repo/target/debug/deps/mobigrid_forecast-69306a919af0858a: crates/forecast/src/lib.rs crates/forecast/src/ar.rs crates/forecast/src/brown.rs crates/forecast/src/error.rs crates/forecast/src/holt.rs crates/forecast/src/kalman.rs crates/forecast/src/lin.rs crates/forecast/src/metrics.rs crates/forecast/src/ses.rs crates/forecast/src/tracker.rs

crates/forecast/src/lib.rs:
crates/forecast/src/ar.rs:
crates/forecast/src/brown.rs:
crates/forecast/src/error.rs:
crates/forecast/src/holt.rs:
crates/forecast/src/kalman.rs:
crates/forecast/src/lin.rs:
crates/forecast/src/metrics.rs:
crates/forecast/src/ses.rs:
crates/forecast/src/tracker.rs:
