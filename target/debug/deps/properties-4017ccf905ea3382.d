/root/repo/target/debug/deps/properties-4017ccf905ea3382.d: crates/geo/tests/properties.rs Cargo.toml

/root/repo/target/debug/deps/libproperties-4017ccf905ea3382.rmeta: crates/geo/tests/properties.rs Cargo.toml

crates/geo/tests/properties.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
