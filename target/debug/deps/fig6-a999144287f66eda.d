/root/repo/target/debug/deps/fig6-a999144287f66eda.d: crates/experiments/src/bin/fig6.rs crates/experiments/src/bin/common/mod.rs

/root/repo/target/debug/deps/libfig6-a999144287f66eda.rmeta: crates/experiments/src/bin/fig6.rs crates/experiments/src/bin/common/mod.rs

crates/experiments/src/bin/fig6.rs:
crates/experiments/src/bin/common/mod.rs:
