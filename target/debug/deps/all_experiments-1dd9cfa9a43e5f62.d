/root/repo/target/debug/deps/all_experiments-1dd9cfa9a43e5f62.d: crates/experiments/src/bin/all_experiments.rs crates/experiments/src/bin/common/mod.rs

/root/repo/target/debug/deps/all_experiments-1dd9cfa9a43e5f62: crates/experiments/src/bin/all_experiments.rs crates/experiments/src/bin/common/mod.rs

crates/experiments/src/bin/all_experiments.rs:
crates/experiments/src/bin/common/mod.rs:
