/root/repo/target/debug/deps/fig5-83f4a58cc856e037.d: crates/experiments/src/bin/fig5.rs crates/experiments/src/bin/common/mod.rs

/root/repo/target/debug/deps/fig5-83f4a58cc856e037: crates/experiments/src/bin/fig5.rs crates/experiments/src/bin/common/mod.rs

crates/experiments/src/bin/fig5.rs:
crates/experiments/src/bin/common/mod.rs:
