/root/repo/target/debug/deps/figures-d0eb8d68f494abf0.d: crates/bench/benches/figures.rs Cargo.toml

/root/repo/target/debug/deps/libfigures-d0eb8d68f494abf0.rmeta: crates/bench/benches/figures.rs Cargo.toml

crates/bench/benches/figures.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
