/root/repo/target/debug/deps/properties-43d6edc9f2e63f5a.d: crates/geo/tests/properties.rs

/root/repo/target/debug/deps/properties-43d6edc9f2e63f5a: crates/geo/tests/properties.rs

crates/geo/tests/properties.rs:
