/root/repo/target/debug/deps/properties-cb53061f958807f1.d: crates/sim/tests/properties.rs

/root/repo/target/debug/deps/libproperties-cb53061f958807f1.rmeta: crates/sim/tests/properties.rs

crates/sim/tests/properties.rs:
