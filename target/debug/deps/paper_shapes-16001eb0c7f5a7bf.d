/root/repo/target/debug/deps/paper_shapes-16001eb0c7f5a7bf.d: tests/paper_shapes.rs

/root/repo/target/debug/deps/libpaper_shapes-16001eb0c7f5a7bf.rmeta: tests/paper_shapes.rs

tests/paper_shapes.rs:
