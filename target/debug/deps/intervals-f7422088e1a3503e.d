/root/repo/target/debug/deps/intervals-f7422088e1a3503e.d: crates/experiments/src/bin/intervals.rs crates/experiments/src/bin/common/mod.rs

/root/repo/target/debug/deps/libintervals-f7422088e1a3503e.rmeta: crates/experiments/src/bin/intervals.rs crates/experiments/src/bin/common/mod.rs

crates/experiments/src/bin/intervals.rs:
crates/experiments/src/bin/common/mod.rs:
