/root/repo/target/debug/deps/table1-12190a84e9d23ea6.d: crates/experiments/src/bin/table1.rs

/root/repo/target/debug/deps/libtable1-12190a84e9d23ea6.rmeta: crates/experiments/src/bin/table1.rs

crates/experiments/src/bin/table1.rs:
