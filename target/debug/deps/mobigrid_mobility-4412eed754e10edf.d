/root/repo/target/debug/deps/mobigrid_mobility-4412eed754e10edf.d: crates/mobility/src/lib.rs crates/mobility/src/gauss_markov.rs crates/mobility/src/indoor.rs crates/mobility/src/linear.rs crates/mobility/src/model.rs crates/mobility/src/patrol.rs crates/mobility/src/pattern.rs crates/mobility/src/random_walk.rs crates/mobility/src/schedule.rs crates/mobility/src/stop.rs crates/mobility/src/trace.rs

/root/repo/target/debug/deps/libmobigrid_mobility-4412eed754e10edf.rlib: crates/mobility/src/lib.rs crates/mobility/src/gauss_markov.rs crates/mobility/src/indoor.rs crates/mobility/src/linear.rs crates/mobility/src/model.rs crates/mobility/src/patrol.rs crates/mobility/src/pattern.rs crates/mobility/src/random_walk.rs crates/mobility/src/schedule.rs crates/mobility/src/stop.rs crates/mobility/src/trace.rs

/root/repo/target/debug/deps/libmobigrid_mobility-4412eed754e10edf.rmeta: crates/mobility/src/lib.rs crates/mobility/src/gauss_markov.rs crates/mobility/src/indoor.rs crates/mobility/src/linear.rs crates/mobility/src/model.rs crates/mobility/src/patrol.rs crates/mobility/src/pattern.rs crates/mobility/src/random_walk.rs crates/mobility/src/schedule.rs crates/mobility/src/stop.rs crates/mobility/src/trace.rs

crates/mobility/src/lib.rs:
crates/mobility/src/gauss_markov.rs:
crates/mobility/src/indoor.rs:
crates/mobility/src/linear.rs:
crates/mobility/src/model.rs:
crates/mobility/src/patrol.rs:
crates/mobility/src/pattern.rs:
crates/mobility/src/random_walk.rs:
crates/mobility/src/schedule.rs:
crates/mobility/src/stop.rs:
crates/mobility/src/trace.rs:
