/root/repo/target/debug/deps/mobigrid_adf-e1e2cac424172ec5.d: crates/adf/src/lib.rs crates/adf/src/broker.rs crates/adf/src/classifier.rs crates/adf/src/config.rs crates/adf/src/filter.rs crates/adf/src/node.rs crates/adf/src/pipeline.rs crates/adf/src/policy.rs crates/adf/src/stats.rs

/root/repo/target/debug/deps/mobigrid_adf-e1e2cac424172ec5: crates/adf/src/lib.rs crates/adf/src/broker.rs crates/adf/src/classifier.rs crates/adf/src/config.rs crates/adf/src/filter.rs crates/adf/src/node.rs crates/adf/src/pipeline.rs crates/adf/src/policy.rs crates/adf/src/stats.rs

crates/adf/src/lib.rs:
crates/adf/src/broker.rs:
crates/adf/src/classifier.rs:
crates/adf/src/config.rs:
crates/adf/src/filter.rs:
crates/adf/src/node.rs:
crates/adf/src/pipeline.rs:
crates/adf/src/policy.rs:
crates/adf/src/stats.rs:
