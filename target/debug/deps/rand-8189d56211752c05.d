/root/repo/target/debug/deps/rand-8189d56211752c05.d: /tmp/stubs/rand/src/lib.rs

/root/repo/target/debug/deps/librand-8189d56211752c05.rmeta: /tmp/stubs/rand/src/lib.rs

/tmp/stubs/rand/src/lib.rs:
