/root/repo/target/debug/deps/fig5-b0442f97623bf597.d: crates/experiments/src/bin/fig5.rs crates/experiments/src/bin/common/mod.rs

/root/repo/target/debug/deps/libfig5-b0442f97623bf597.rmeta: crates/experiments/src/bin/fig5.rs crates/experiments/src/bin/common/mod.rs

crates/experiments/src/bin/fig5.rs:
crates/experiments/src/bin/common/mod.rs:
