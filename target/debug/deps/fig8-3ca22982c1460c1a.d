/root/repo/target/debug/deps/fig8-3ca22982c1460c1a.d: crates/experiments/src/bin/fig8.rs crates/experiments/src/bin/common/mod.rs

/root/repo/target/debug/deps/fig8-3ca22982c1460c1a: crates/experiments/src/bin/fig8.rs crates/experiments/src/bin/common/mod.rs

crates/experiments/src/bin/fig8.rs:
crates/experiments/src/bin/common/mod.rs:
