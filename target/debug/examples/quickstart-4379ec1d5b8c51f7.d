/root/repo/target/debug/examples/quickstart-4379ec1d5b8c51f7.d: examples/quickstart.rs

/root/repo/target/debug/examples/libquickstart-4379ec1d5b8c51f7.rmeta: examples/quickstart.rs

examples/quickstart.rs:
