/root/repo/target/debug/examples/hla_federation-34fd46678e25a398.d: examples/hla_federation.rs

/root/repo/target/debug/examples/hla_federation-34fd46678e25a398: examples/hla_federation.rs

examples/hla_federation.rs:
