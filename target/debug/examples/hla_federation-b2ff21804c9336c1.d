/root/repo/target/debug/examples/hla_federation-b2ff21804c9336c1.d: examples/hla_federation.rs

/root/repo/target/debug/examples/hla_federation-b2ff21804c9336c1: examples/hla_federation.rs

examples/hla_federation.rs:
