/root/repo/target/debug/examples/quickstart-e2662f14ffacbf7c.d: examples/quickstart.rs Cargo.toml

/root/repo/target/debug/examples/libquickstart-e2662f14ffacbf7c.rmeta: examples/quickstart.rs Cargo.toml

examples/quickstart.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
