/root/repo/target/debug/examples/campus_day-e0029e80cc41f6b2.d: examples/campus_day.rs

/root/repo/target/debug/examples/campus_day-e0029e80cc41f6b2: examples/campus_day.rs

examples/campus_day.rs:
