/root/repo/target/debug/examples/location_estimation-094ccbfd4ea57c37.d: examples/location_estimation.rs Cargo.toml

/root/repo/target/debug/examples/liblocation_estimation-094ccbfd4ea57c37.rmeta: examples/location_estimation.rs Cargo.toml

examples/location_estimation.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
