/root/repo/target/debug/examples/location_estimation-314dec11d3dc3669.d: examples/location_estimation.rs

/root/repo/target/debug/examples/location_estimation-314dec11d3dc3669: examples/location_estimation.rs

examples/location_estimation.rs:
