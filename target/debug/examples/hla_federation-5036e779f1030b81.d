/root/repo/target/debug/examples/hla_federation-5036e779f1030b81.d: examples/hla_federation.rs Cargo.toml

/root/repo/target/debug/examples/libhla_federation-5036e779f1030b81.rmeta: examples/hla_federation.rs Cargo.toml

examples/hla_federation.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
