/root/repo/target/debug/examples/traffic_reduction-99098a0340262357.d: examples/traffic_reduction.rs Cargo.toml

/root/repo/target/debug/examples/libtraffic_reduction-99098a0340262357.rmeta: examples/traffic_reduction.rs Cargo.toml

examples/traffic_reduction.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
