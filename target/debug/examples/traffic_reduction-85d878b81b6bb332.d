/root/repo/target/debug/examples/traffic_reduction-85d878b81b6bb332.d: examples/traffic_reduction.rs

/root/repo/target/debug/examples/traffic_reduction-85d878b81b6bb332: examples/traffic_reduction.rs

examples/traffic_reduction.rs:
