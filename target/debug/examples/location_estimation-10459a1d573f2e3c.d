/root/repo/target/debug/examples/location_estimation-10459a1d573f2e3c.d: examples/location_estimation.rs

/root/repo/target/debug/examples/liblocation_estimation-10459a1d573f2e3c.rmeta: examples/location_estimation.rs

examples/location_estimation.rs:
