/root/repo/target/debug/examples/traffic_reduction-6df160491254ebd4.d: examples/traffic_reduction.rs

/root/repo/target/debug/examples/libtraffic_reduction-6df160491254ebd4.rmeta: examples/traffic_reduction.rs

examples/traffic_reduction.rs:
