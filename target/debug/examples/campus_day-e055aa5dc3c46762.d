/root/repo/target/debug/examples/campus_day-e055aa5dc3c46762.d: examples/campus_day.rs

/root/repo/target/debug/examples/campus_day-e055aa5dc3c46762: examples/campus_day.rs

examples/campus_day.rs:
