/root/repo/target/debug/examples/campus_day-1b1d58e396558024.d: examples/campus_day.rs

/root/repo/target/debug/examples/libcampus_day-1b1d58e396558024.rmeta: examples/campus_day.rs

examples/campus_day.rs:
