/root/repo/target/debug/examples/traffic_reduction-904ddbcb7fb4af2e.d: examples/traffic_reduction.rs

/root/repo/target/debug/examples/traffic_reduction-904ddbcb7fb4af2e: examples/traffic_reduction.rs

examples/traffic_reduction.rs:
