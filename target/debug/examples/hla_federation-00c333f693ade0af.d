/root/repo/target/debug/examples/hla_federation-00c333f693ade0af.d: examples/hla_federation.rs

/root/repo/target/debug/examples/libhla_federation-00c333f693ade0af.rmeta: examples/hla_federation.rs

examples/hla_federation.rs:
