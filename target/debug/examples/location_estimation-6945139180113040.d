/root/repo/target/debug/examples/location_estimation-6945139180113040.d: examples/location_estimation.rs

/root/repo/target/debug/examples/location_estimation-6945139180113040: examples/location_estimation.rs

examples/location_estimation.rs:
