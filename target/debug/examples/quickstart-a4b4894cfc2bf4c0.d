/root/repo/target/debug/examples/quickstart-a4b4894cfc2bf4c0.d: examples/quickstart.rs

/root/repo/target/debug/examples/quickstart-a4b4894cfc2bf4c0: examples/quickstart.rs

examples/quickstart.rs:
