/root/repo/target/debug/examples/quickstart-881012e49f75d0fe.d: examples/quickstart.rs

/root/repo/target/debug/examples/quickstart-881012e49f75d0fe: examples/quickstart.rs

examples/quickstart.rs:
